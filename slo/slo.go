// Package slo evaluates service-level objectives over a rolling window of
// update outcomes and raises multi-window burn-rate alerts, the alerting
// discipline from the Google SRE workbook: page when the error budget is
// burning fast over both a long window (sustained, not a blip) and a short
// window (still happening right now).
//
// Two objective families cover clarifyd's serving promise:
//
//   - availability: a fraction of updates must complete without error
//     (goal, e.g. 0.999);
//   - latency: a fraction of updates must finish under a threshold
//     (goal, e.g. 0.99 of updates verified < 500ms) — a latency miss burns
//     that objective's budget exactly like an error burns availability's.
//
// A Monitor keeps per-second good/bad counters in a fixed ring sized to the
// longest alert window, so memory is constant and Observe is O(1). Burn
// rate over a window is (bad fraction) / (1 − goal): burn 1.0 spends the
// budget exactly at the sustainable pace, 14.4 spends a 30-day budget in
// ~2 days. All methods are safe for concurrent use and no-op on a nil Set.
package slo

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Objective is one service-level objective.
type Objective struct {
	// Name labels the objective in snapshots and metric series
	// (e.g. "availability", "latency").
	Name string `json:"name"`
	// Goal is the target good fraction in (0,1), e.g. 0.999.
	Goal float64 `json:"goal"`
	// LatencyThresholdMs, when positive, makes this a latency objective: an
	// update is good when it succeeds AND finishes under the threshold.
	// Zero makes it an availability objective (success alone is good).
	LatencyThresholdMs float64 `json:"latencyThresholdMs,omitempty"`
}

// Window is one burn-rate alert rule: the alert fires while the burn rate
// over BOTH the long and the short window is at or above Burn.
type Window struct {
	// Long is the sustained-burn window (e.g. 1h).
	Long time.Duration `json:"-"`
	// Short is the still-happening window (e.g. 5m).
	Short time.Duration `json:"-"`
	// Burn is the burn-rate threshold (e.g. 14.4).
	Burn float64 `json:"burn"`
	// Severity labels the alert (e.g. "page", "ticket").
	Severity string `json:"severity"`
}

// windowJSON exposes the durations in seconds on the wire.
type windowJSON struct {
	LongS    float64 `json:"longSeconds"`
	ShortS   float64 `json:"shortSeconds"`
	Burn     float64 `json:"burn"`
	Severity string  `json:"severity"`
}

// MarshalJSON renders the window with durations in seconds.
func (w Window) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"longSeconds":%s,"shortSeconds":%s,"burn":%s,"severity":%q}`,
		formatFloat(w.Long.Seconds()), formatFloat(w.Short.Seconds()),
		formatFloat(w.Burn), w.Severity)), nil
}

// UnmarshalJSON restores a window from its wire form.
func (w *Window) UnmarshalJSON(data []byte) error {
	var in windowJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	w.Long = time.Duration(in.LongS * float64(time.Second))
	w.Short = time.Duration(in.ShortS * float64(time.Second))
	w.Burn = in.Burn
	w.Severity = in.Severity
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// Config assembles a Set.
type Config struct {
	// Objectives to track; empty selects DefaultObjectives.
	Objectives []Objective
	// Windows are the burn-rate alert rules; empty selects DefaultWindows.
	Windows []Window
	// Resolution is the ring bucket width (default 1s). Tests shrink it to
	// exercise hours-long windows in milliseconds.
	Resolution time.Duration

	// now overrides the clock (tests).
	now func() time.Time
}

// DefaultObjectives is the serving promise clarifyd ships with: 99.9% of
// updates complete without error, and 99% of updates finish under 500ms.
func DefaultObjectives() []Objective {
	return []Objective{
		{Name: "availability", Goal: 0.999},
		{Name: "latency", Goal: 0.99, LatencyThresholdMs: 500},
	}
}

// DefaultWindows is the classic two-rule multi-window ladder: a fast page
// (1h/5m at burn 14.4) and a slow ticket (6h/30m at burn 6).
func DefaultWindows() []Window {
	return []Window{
		{Long: time.Hour, Short: 5 * time.Minute, Burn: 14.4, Severity: "page"},
		{Long: 6 * time.Hour, Short: 30 * time.Minute, Burn: 6, Severity: "ticket"},
	}
}

// ParseWindows parses a flag-friendly window spec:
// "long:short:burn:severity[,...]", e.g. "1h:5m:14.4:page,6h:30m:6:ticket".
func ParseWindows(spec string) ([]Window, error) {
	var out []Window
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 4 {
			return nil, fmt.Errorf("slo: window %q: want long:short:burn:severity", part)
		}
		long, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("slo: window %q: long: %w", part, err)
		}
		short, err := time.ParseDuration(fields[1])
		if err != nil {
			return nil, fmt.Errorf("slo: window %q: short: %w", part, err)
		}
		burn, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("slo: window %q: burn: %w", part, err)
		}
		if long <= 0 || short <= 0 || short > long || burn <= 0 || fields[3] == "" {
			return nil, fmt.Errorf("slo: window %q: want 0 < short <= long, burn > 0, non-empty severity", part)
		}
		out = append(out, Window{Long: long, Short: short, Burn: burn, Severity: fields[3]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty window spec")
	}
	return out, nil
}

// bucket is one resolution-interval of outcomes.
type bucket struct {
	epoch int64 // bucket index since the unix epoch; stale slots are skipped
	good  int64
	bad   int64
}

// Monitor tracks one objective in a fixed ring of per-resolution buckets.
type Monitor struct {
	obj     Objective
	windows []Window
	res     time.Duration
	now     func() time.Time

	mu   sync.Mutex
	ring []bucket
	// totals since process start (budget accounting is windowed; these feed
	// counters in the Prometheus view).
	good int64
	bad  int64
}

func newMonitor(obj Objective, windows []Window, res time.Duration, now func() time.Time) *Monitor {
	longest := time.Duration(0)
	for _, w := range windows {
		if w.Long > longest {
			longest = w.Long
		}
	}
	n := int(longest/res) + 2
	return &Monitor{obj: obj, windows: windows, res: res, now: now, ring: make([]bucket, n)}
}

// observe records one outcome.
func (m *Monitor) observe(dur time.Duration, failed bool) {
	good := !failed
	if good && m.obj.LatencyThresholdMs > 0 &&
		float64(dur)/float64(time.Millisecond) > m.obj.LatencyThresholdMs {
		good = false
	}
	epoch := m.now().UnixNano() / int64(m.res)
	m.mu.Lock()
	defer m.mu.Unlock()
	b := &m.ring[int(epoch%int64(len(m.ring)))]
	if b.epoch != epoch {
		*b = bucket{epoch: epoch}
	}
	if good {
		b.good++
		m.good++
	} else {
		b.bad++
		m.bad++
	}
}

// rates sums the ring over the trailing window; callers hold m.mu.
func (m *Monitor) ratesLocked(window time.Duration, nowEpoch int64) (good, bad int64) {
	n := int64(window / m.res)
	if n < 1 {
		n = 1
	}
	for _, b := range m.ring {
		if b.epoch > nowEpoch-n && b.epoch <= nowEpoch {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// burn computes the burn rate for a trailing window; callers hold m.mu.
// With no traffic in the window the burn is zero (nothing is burning).
func (m *Monitor) burnLocked(window time.Duration, nowEpoch int64) float64 {
	good, bad := m.ratesLocked(window, nowEpoch)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - m.obj.Goal
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget
}

// WindowState is one alert rule's evaluation.
type WindowState struct {
	Window
	// LongBurn / ShortBurn are the measured burn rates.
	LongBurn  float64 `json:"longBurn"`
	ShortBurn float64 `json:"shortBurn"`
	// Firing is true while both burns are at or above the threshold.
	Firing bool `json:"firing"`
}

// windowStateJSON is the wire form; the embedded Window's custom MarshalJSON
// would otherwise be promoted and silently drop the burn fields.
type windowStateJSON struct {
	windowJSON
	LongBurn  float64 `json:"longBurn"`
	ShortBurn float64 `json:"shortBurn"`
	Firing    bool    `json:"firing"`
}

// MarshalJSON renders the rule and its evaluation together.
func (s WindowState) MarshalJSON() ([]byte, error) {
	return json.Marshal(windowStateJSON{
		windowJSON: windowJSON{
			LongS:    s.Long.Seconds(),
			ShortS:   s.Short.Seconds(),
			Burn:     s.Burn,
			Severity: s.Severity,
		},
		LongBurn:  s.LongBurn,
		ShortBurn: s.ShortBurn,
		Firing:    s.Firing,
	})
}

// UnmarshalJSON restores a window state from its wire form.
func (s *WindowState) UnmarshalJSON(data []byte) error {
	var in windowStateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	s.Window = Window{
		Long:     time.Duration(in.LongS * float64(time.Second)),
		Short:    time.Duration(in.ShortS * float64(time.Second)),
		Burn:     in.Burn,
		Severity: in.Severity,
	}
	s.LongBurn = in.LongBurn
	s.ShortBurn = in.ShortBurn
	s.Firing = in.Firing
	return nil
}

// MonitorSnapshot is one objective's state.
type MonitorSnapshot struct {
	Objective Objective `json:"objective"`
	// Good / Bad count outcomes since process start.
	Good int64 `json:"good"`
	Bad  int64 `json:"bad"`
	// ErrorBudgetRemaining is the fraction of the longest window's budget
	// still unspent, clamped to [0,1]: 1 means untouched, 0 means exhausted.
	ErrorBudgetRemaining float64 `json:"errorBudgetRemaining"`
	// Windows holds each alert rule's evaluation.
	Windows []WindowState `json:"windows"`
}

// Firing reports whether any window alert is firing.
func (s MonitorSnapshot) Firing() bool {
	for _, w := range s.Windows {
		if w.Firing {
			return true
		}
	}
	return false
}

// snapshot evaluates every window now.
func (m *Monitor) snapshot() MonitorSnapshot {
	nowEpoch := m.now().UnixNano() / int64(m.res)
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := MonitorSnapshot{Objective: m.obj, Good: m.good, Bad: m.bad}
	longest := time.Duration(0)
	for _, w := range m.windows {
		lb := m.burnLocked(w.Long, nowEpoch)
		sb := m.burnLocked(w.Short, nowEpoch)
		snap.Windows = append(snap.Windows, WindowState{
			Window:   w,
			LongBurn: lb, ShortBurn: sb,
			Firing: lb >= w.Burn && sb >= w.Burn,
		})
		if w.Long > longest {
			longest = w.Long
		}
	}
	// Budget remaining over the longest window: 1 − burn (burn 1.0 over the
	// whole window = budget exactly spent).
	remaining := 1 - m.burnLocked(longest, nowEpoch)
	if remaining < 0 {
		remaining = 0
	} else if remaining > 1 {
		remaining = 1
	}
	snap.ErrorBudgetRemaining = remaining
	return snap
}

// Set evaluates a group of objectives against one outcome stream. A nil Set
// no-ops, so callers need no "is SLO tracking enabled?" branches.
type Set struct {
	monitors []*Monitor
}

// New builds a Set from cfg, filling defaults for empty fields.
func New(cfg Config) (*Set, error) {
	objs := cfg.Objectives
	if len(objs) == 0 {
		objs = DefaultObjectives()
	}
	windows := cfg.Windows
	if len(windows) == 0 {
		windows = DefaultWindows()
	}
	res := cfg.Resolution
	if res <= 0 {
		res = time.Second
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	seen := map[string]bool{}
	for _, o := range objs {
		if o.Name == "" || o.Goal <= 0 || o.Goal >= 1 {
			return nil, fmt.Errorf("slo: objective %+v: want a name and goal in (0,1)", o)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
	}
	for _, w := range windows {
		if w.Long <= 0 || w.Short <= 0 || w.Short > w.Long || w.Burn <= 0 {
			return nil, fmt.Errorf("slo: window %+v: want 0 < short <= long and burn > 0", w)
		}
	}
	s := &Set{}
	for _, o := range objs {
		s.monitors = append(s.monitors, newMonitor(o, windows, res, now))
	}
	return s, nil
}

// Clone builds a fresh Set with the same objectives, windows, resolution,
// and clock but empty rings. The server spawns one clone per tenant so each
// tenant's burn rates are judged against the same targets as the fleet's.
// Safe on a nil Set (returns nil, which no-ops like its parent).
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	out := &Set{}
	for _, m := range s.monitors {
		out.monitors = append(out.monitors, newMonitor(m.obj, m.windows, m.res, m.now))
	}
	return out
}

// Observe records one update outcome against every objective. Safe on a nil
// Set.
func (s *Set) Observe(dur time.Duration, failed bool) {
	if s == nil {
		return
	}
	for _, m := range s.monitors {
		m.observe(dur, failed)
	}
}

// Snapshot is the full SLO state, served at GET /debug/slo and embedded in
// /metrics.
type Snapshot struct {
	Objectives []MonitorSnapshot `json:"objectives"`
}

// Firing reports whether any objective has a firing alert.
func (s Snapshot) Firing() bool {
	for _, o := range s.Objectives {
		if o.Firing() {
			return true
		}
	}
	return false
}

// Snapshot evaluates every objective now. Safe on a nil Set (empty
// snapshot).
func (s *Set) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	var snap Snapshot
	for _, m := range s.monitors {
		snap.Objectives = append(snap.Objectives, m.snapshot())
	}
	sort.Slice(snap.Objectives, func(i, j int) bool {
		return snap.Objectives[i].Objective.Name < snap.Objectives[j].Objective.Name
	})
	return snap
}
