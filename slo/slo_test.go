package slo

import (
	"encoding/json"
	"testing"
	"time"
)

// fakeClock advances manually so hour-long windows run in microseconds.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func mustNew(t *testing.T, cfg Config) *Set {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBurnRateMath(t *testing.T) {
	clk := newFakeClock()
	s := mustNew(t, Config{
		Objectives: []Objective{{Name: "availability", Goal: 0.99}},
		Windows:    []Window{{Long: time.Minute, Short: 10 * time.Second, Burn: 10, Severity: "page"}},
		Resolution: time.Second,
		now:        clk.now,
	})
	// 20% failures against a 1% budget = burn rate 20, well past the
	// threshold of 10 (sitting exactly on the threshold is float-fragile).
	for i := 0; i < 100; i++ {
		s.Observe(time.Millisecond, i%5 == 0)
		clk.advance(100 * time.Millisecond) // all inside both windows
	}
	snap := s.Snapshot()
	if len(snap.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(snap.Objectives))
	}
	o := snap.Objectives[0]
	if o.Good != 80 || o.Bad != 20 {
		t.Fatalf("good/bad = %d/%d, want 80/20", o.Good, o.Bad)
	}
	w := o.Windows[0]
	if w.LongBurn < 19.8 || w.LongBurn > 20.2 {
		t.Errorf("long burn = %v, want ~20 (20%% bad / 1%% budget)", w.LongBurn)
	}
	if !w.Firing {
		t.Error("burn 20 at threshold 10 must fire")
	}
	if o.ErrorBudgetRemaining > 0.001 {
		t.Errorf("budget remaining = %v, want ~0 at burn 10 over the longest window", o.ErrorBudgetRemaining)
	}
	if !snap.Firing() {
		t.Error("Snapshot.Firing() must be true")
	}
}

func TestMultiWindowNeedsBothBurns(t *testing.T) {
	clk := newFakeClock()
	s := mustNew(t, Config{
		Objectives: []Objective{{Name: "availability", Goal: 0.9}},
		Windows:    []Window{{Long: time.Minute, Short: 5 * time.Second, Burn: 5, Severity: "page"}},
		Resolution: time.Second,
		now:        clk.now,
	})
	// A burst of failures, then a quiet stretch longer than the short window:
	// the long window still burns hot, but the short window has recovered, so
	// the alert must NOT fire (the outage is over).
	for i := 0; i < 20; i++ {
		s.Observe(time.Millisecond, true)
		clk.advance(time.Second / 2)
	}
	for i := 0; i < 20; i++ {
		s.Observe(time.Millisecond, false)
		clk.advance(time.Second / 2)
	}
	o := s.Snapshot().Objectives[0]
	w := o.Windows[0]
	if w.LongBurn < 5 {
		t.Fatalf("long burn = %v, want >= 5 (half the minute was an outage)", w.LongBurn)
	}
	if w.ShortBurn >= 5 {
		t.Fatalf("short burn = %v, want < 5 (last 5s were clean)", w.ShortBurn)
	}
	if w.Firing {
		t.Error("alert fired on long burn alone; multi-window requires both")
	}
}

func TestLatencyObjective(t *testing.T) {
	clk := newFakeClock()
	s := mustNew(t, Config{
		Objectives: []Objective{{Name: "latency", Goal: 0.5, LatencyThresholdMs: 100}},
		Windows:    []Window{{Long: time.Minute, Short: time.Second, Burn: 1, Severity: "page"}},
		Resolution: time.Second,
		now:        clk.now,
	})
	s.Observe(50*time.Millisecond, false)  // good: fast success
	s.Observe(500*time.Millisecond, false) // bad: slow success
	s.Observe(50*time.Millisecond, true)   // bad: failure, even though fast
	o := s.Snapshot().Objectives[0]
	if o.Good != 1 || o.Bad != 2 {
		t.Fatalf("good/bad = %d/%d, want 1/2 (slow and failed both burn)", o.Good, o.Bad)
	}
}

func TestZeroTrafficZeroBurn(t *testing.T) {
	clk := newFakeClock()
	s := mustNew(t, Config{Resolution: time.Second, now: clk.now})
	snap := s.Snapshot()
	for _, o := range snap.Objectives {
		if o.Firing() {
			t.Errorf("objective %q fires with no traffic", o.Objective.Name)
		}
		if o.ErrorBudgetRemaining != 1 {
			t.Errorf("objective %q budget = %v, want 1 untouched", o.Objective.Name, o.ErrorBudgetRemaining)
		}
	}
}

func TestRingExpiry(t *testing.T) {
	clk := newFakeClock()
	s := mustNew(t, Config{
		Objectives: []Objective{{Name: "availability", Goal: 0.99}},
		Windows:    []Window{{Long: 10 * time.Second, Short: time.Second, Burn: 1, Severity: "page"}},
		Resolution: time.Second,
		now:        clk.now,
	})
	s.Observe(0, true)
	// Outcomes older than the longest window must age out of the burn math
	// (the since-start counters keep them).
	clk.advance(time.Minute)
	o := s.Snapshot().Objectives[0]
	if o.Windows[0].LongBurn != 0 {
		t.Errorf("long burn = %v after the failure aged out, want 0", o.Windows[0].LongBurn)
	}
	if o.Bad != 1 {
		t.Errorf("since-start bad = %d, want 1", o.Bad)
	}
}

func TestParseWindows(t *testing.T) {
	ws, err := ParseWindows("1h:5m:14.4:page, 6h:30m:6:ticket")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("parsed %d windows, want 2", len(ws))
	}
	if ws[0].Long != time.Hour || ws[0].Short != 5*time.Minute || ws[0].Burn != 14.4 || ws[0].Severity != "page" {
		t.Errorf("window 0 = %+v", ws[0])
	}
	if ws[1].Long != 6*time.Hour || ws[1].Burn != 6 || ws[1].Severity != "ticket" {
		t.Errorf("window 1 = %+v", ws[1])
	}
	for _, bad := range []string{"", "1h:5m:14.4", "5m:1h:2:page", "1h:5m:0:page", "1h:5m:x:page", "1h:5m:2:"} {
		if _, err := ParseWindows(bad); err == nil {
			t.Errorf("ParseWindows(%q) accepted, want error", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Objectives: []Objective{{Name: "", Goal: 0.9}}},
		{Objectives: []Objective{{Name: "a", Goal: 0}}},
		{Objectives: []Objective{{Name: "a", Goal: 1}}},
		{Objectives: []Objective{{Name: "a", Goal: 0.9}, {Name: "a", Goal: 0.99}}},
		{Windows: []Window{{Long: time.Second, Short: time.Minute, Burn: 1, Severity: "p"}}},
		{Windows: []Window{{Long: time.Minute, Short: time.Second, Burn: 0, Severity: "p"}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := New(Config{}); err != nil {
		t.Fatal("zero config must select defaults:", err)
	}
}

func TestNilSetNoOps(t *testing.T) {
	var s *Set
	s.Observe(time.Second, true)
	if snap := s.Snapshot(); len(snap.Objectives) != 0 || snap.Firing() {
		t.Fatalf("nil snapshot = %+v, want empty", snap)
	}
}

func TestWindowJSONRoundTrip(t *testing.T) {
	in := Window{Long: time.Hour, Short: 5 * time.Minute, Burn: 14.4, Severity: "page"}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Window
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %s -> %+v", in, data, out)
	}
}

// TestWindowStateJSONRoundTrip guards against the embedded Window's
// MarshalJSON being promoted and silently dropping the burn fields — a
// snapshot fetched over HTTP must preserve Firing.
func TestWindowStateJSONRoundTrip(t *testing.T) {
	in := WindowState{
		Window:   Window{Long: 30 * time.Second, Short: 2 * time.Second, Burn: 2, Severity: "page"},
		LongBurn: 3.5, ShortBurn: 4.25, Firing: true,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out WindowState
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip %+v -> %s -> %+v", in, data, out)
	}
}
