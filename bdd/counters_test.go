package bdd

import "testing"

// TestCountersTrackWorkload checks that the pool's workload counters move
// with the operations they name, and that Sub/Add give windowed deltas.
func TestCountersTrackWorkload(t *testing.T) {
	p := NewPool(8)
	if c := p.Counters(); c != (Counters{}) {
		t.Fatalf("fresh pool has non-zero counters: %+v", c)
	}

	a, b := p.Var(0), p.Var(1)
	before := p.Counters()
	x := p.And(a, b)
	afterFirst := p.Counters()
	d := afterFirst.Sub(before)
	if d.ITECalls <= 0 {
		t.Fatalf("And must go through ITE: delta %+v", d)
	}
	if d.UniqueMisses <= 0 {
		t.Fatalf("a fresh conjunction builds at least one node: delta %+v", d)
	}

	// The identical operation replays from the caches: no new node builds.
	y := p.And(a, b)
	if y != x {
		t.Fatal("identical operation must be canonical")
	}
	d2 := p.Counters().Sub(afterFirst)
	if d2.UniqueMisses != 0 {
		t.Fatalf("replayed operation must not build nodes: delta %+v", d2)
	}
	if d2.ITECalls <= 0 {
		t.Fatalf("replayed operation still counts its ITE call: delta %+v", d2)
	}

	// Unique-table hits happen when mk rediscovers an existing node.
	p.Or(a, b)
	total := p.Counters()
	if total.ITECalls < d.ITECalls+d2.ITECalls {
		t.Fatalf("counters must be monotone: %+v", total)
	}

	sum := d.Add(d2)
	if sum.ITECalls != d.ITECalls+d2.ITECalls || sum.UniqueMisses != d.UniqueMisses+d2.UniqueMisses {
		t.Fatalf("Add is not componentwise: %+v", sum)
	}
}

// TestCountersGrowth forces a unique-table growth and checks it registers.
func TestCountersGrowth(t *testing.T) {
	p := NewPool(24)
	// Build well over initialTableSize distinct nodes (growth triggers at a
	// 3/4 load factor) by accumulating pairwise conjunctions into a parity
	// chain.
	acc := p.Var(0)
	for i := 1; i < 24; i++ {
		acc = p.Xor(acc, p.Var(i))
	}
	for i := 0; i < 23; i++ {
		for j := i + 1; j < 24; j++ {
			acc = p.Or(acc, p.And(p.Var(i), p.Var(j)))
		}
	}
	c := p.Counters()
	if c.Growths <= 0 {
		t.Fatalf("workload of %d misses must trigger growth past the initial %d-slot table: %+v",
			c.UniqueMisses, initialTableSize, c)
	}
	if c.UniqueMisses < int64(p.Size()-2) {
		t.Fatalf("every live node beyond the terminals was a miss once: %+v vs size %d", c, p.Size())
	}
}
