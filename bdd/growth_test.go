package bdd

import (
	"math/rand"
	"testing"
)

// randomDNF builds a random disjunction of conjunctive terms, wide enough to
// force the unique table and ITE cache through several growth cycles.
func randomDNF(p *Pool, rng *rand.Rand, nVars, nTerms, termWidth int) Node {
	f := False
	for t := 0; t < nTerms; t++ {
		term := True
		for l := 0; l < termWidth; l++ {
			v := p.Var(rng.Intn(nVars))
			if rng.Intn(2) == 0 {
				v = p.Not(v)
			}
			term = p.And(term, v)
		}
		f = p.Or(f, term)
	}
	return f
}

// TestGrowthPreservesCanonicity drives the pool far past the initial table
// size and then checks the central hash-consing invariant: every interior
// node, looked up again by (level, lo, hi), resolves to itself.
func TestGrowthPreservesCanonicity(t *testing.T) {
	const nVars = 20
	p := NewPool(nVars)
	rng := rand.New(rand.NewSource(5))
	f := randomDNF(p, rng, nVars, 90, 9)
	if p.Size() <= initialTableSize {
		t.Fatalf("pool holds %d nodes; need > %d to exercise growth", p.Size(), initialTableSize)
	}
	for i := 2; i < len(p.nodes); i++ {
		n := p.nodes[i]
		if got := p.mk(n.level, n.lo, n.hi); got != Node(i) {
			t.Fatalf("node %d (level=%d lo=%d hi=%d) resolves to %d after growth", i, n.level, n.lo, n.hi, got)
		}
	}
	// The same function rebuilt in a fresh pool must agree pointwise.
	p2 := NewPool(nVars)
	rng2 := rand.New(rand.NewSource(5))
	f2 := randomDNF(p2, rng2, nVars, 90, 9)
	assign := make([]bool, nVars)
	for trial := 0; trial < 2000; trial++ {
		for i := range assign {
			assign[i] = rng.Intn(2) == 0
		}
		if p.Eval(f, assign) != p2.Eval(f2, assign) {
			t.Fatalf("rebuilt function disagrees on %v", assign)
		}
	}
}

// TestQuickExistsRestrictMemos cross-checks the slice-backed memo paths
// against their definitions: ∃v.f = f|v=0 ∨ f|v=1, on random functions big
// enough to stress the memos.
func TestQuickExistsRestrictMemos(t *testing.T) {
	const nVars = 16
	p := NewPool(nVars)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		f := randomDNF(p, rng, nVars, 30, 4)
		v := rng.Intn(nVars)
		lo := p.Restrict(f, map[int]bool{v: false})
		hi := p.Restrict(f, map[int]bool{v: true})
		if got, want := p.Exists(f, []int{v}), p.Or(lo, hi); got != want {
			t.Fatalf("trial %d: Exists(f, {%d}) != Restrict-or", trial, v)
		}
	}
}

// TestQuickSatCountAfterGrowth checks SatCount against brute-force
// enumeration on functions that have been through table growth in a pool
// with many other residents.
func TestQuickSatCountAfterGrowth(t *testing.T) {
	const nVars = 10
	p := NewPool(nVars)
	rng := rand.New(rand.NewSource(13))
	// Populate the pool past its initial tables with unrelated junk.
	randomDNF(p, rng, nVars, 600, 5)
	for trial := 0; trial < 10; trial++ {
		f := randomDNF(p, rng, nVars, 8, 3)
		want := 0
		assign := make([]bool, nVars)
		for bits := 0; bits < 1<<nVars; bits++ {
			for i := range assign {
				assign[i] = bits&(1<<i) != 0
			}
			if p.Eval(f, assign) {
				want++
			}
		}
		if got := p.SatCount(f); got.Int64() != int64(want) {
			t.Fatalf("trial %d: SatCount = %v, brute force = %d", trial, got, want)
		}
	}
}
