package bdd

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestSatCountMemoStable: the ambiguity ledger calls SatCount on overlapping
// unions over and over; the pool-level memo must return identical counts on
// repeat calls, including for subformulas first counted as part of a larger
// formula.
func TestSatCountMemoStable(t *testing.T) {
	const n = 6
	p := NewPool(n)
	a := p.Var(0)
	b := p.Or(a, p.Var(2))
	c := p.Or(b, p.And(p.Var(3), p.Not(p.Var(5))))

	first := map[Node]*big.Int{}
	for _, f := range []Node{c, b, a} { // large first so sub-counts are memoized
		first[f] = p.SatCount(f)
	}
	for _, f := range []Node{a, b, c} {
		if got := p.SatCount(f); got.Cmp(first[f]) != 0 {
			t.Fatalf("repeat SatCount(%d) = %v, want %v", f, got, first[f])
		}
	}
	// The memo must also stay correct as the pool grows new nodes between
	// counts (the live daemon interleaves synthesis with counting).
	d := p.Or(c, p.Var(4))
	if got, again := p.SatCount(d), p.SatCount(d); got.Cmp(again) != 0 {
		t.Fatalf("post-growth SatCount unstable: %v then %v", got, again)
	}
	if got := p.SatCount(c); got.Cmp(first[c]) != 0 {
		t.Fatalf("SatCount(c) after growth = %v, want %v", p.SatCount(c), first[c])
	}
}

// TestSatCountMemoMatchesFreshPool cross-checks memoized counts against a
// fresh pool that computes each formula cold.
func TestSatCountMemoMatchesFreshPool(t *testing.T) {
	const n = 7
	rng := rand.New(rand.NewSource(11))
	warm := NewPool(n)
	var formulas []Node
	for i := 0; i < 30; i++ {
		formulas = append(formulas, randomBDD(rng, warm, n, 4))
	}
	// Count everything twice on the warm pool; every second pass is fully
	// memoized.
	for pass := 0; pass < 2; pass++ {
		rng2 := rand.New(rand.NewSource(11))
		cold := NewPool(n)
		for i, f := range formulas {
			want := cold.SatCount(randomBDD(rng2, cold, n, 4))
			if got := warm.SatCount(f); got.Cmp(want) != 0 {
				t.Fatalf("pass %d formula %d: warm=%v cold=%v", pass, i, got, want)
			}
		}
	}
}

// TestAddVarsInvalidatesSatMemo: sub-counts are weighted by the gap of
// skipped levels below each node, which depends on numVars — growing the
// universe must drop the memo, not serve stale counts.
func TestAddVarsInvalidatesSatMemo(t *testing.T) {
	p := NewPool(3)
	f := p.Var(0)
	if got := p.SatCount(f); got.Cmp(big.NewInt(4)) != 0 { // 2^(3-1)
		t.Fatalf("SatCount before AddVars = %v, want 4", got)
	}
	p.AddVars(2)                                            // universe is now 5 variables
	if got := p.SatCount(f); got.Cmp(big.NewInt(16)) != 0 { // 2^(5-1)
		t.Fatalf("SatCount after AddVars = %v, want 16 (memo must be dropped)", got)
	}
	// And the memo rebuilt after invalidation stays stable.
	if got := p.SatCount(f); got.Cmp(big.NewInt(16)) != 0 {
		t.Fatalf("repeat SatCount after AddVars = %v, want 16", got)
	}
}
