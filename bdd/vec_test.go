package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalVec checks a predicate over every value of a small-width vector.
func evalVecTruth(t *testing.T, p *Pool, f Node, offset, width int, ref func(v uint64) bool) {
	t.Helper()
	vals := make([]bool, p.NumVars())
	for x := uint64(0); x < 1<<uint(width); x++ {
		for i := 0; i < width; i++ {
			vals[offset+i] = x>>uint(width-1-i)&1 == 1
		}
		if got, want := p.Eval(f, vals), ref(x); got != want {
			t.Fatalf("value %d: got %v want %v", x, got, want)
		}
	}
}

func TestVecEqConst(t *testing.T) {
	p := NewPool(6)
	v := NewVec(p, 0, 6)
	for _, c := range []uint64{0, 1, 17, 63} {
		f := v.EqConst(c)
		evalVecTruth(t, p, f, 0, 6, func(x uint64) bool { return x == c })
	}
}

func TestVecLeqGeq(t *testing.T) {
	p := NewPool(6)
	v := NewVec(p, 0, 6)
	for _, c := range []uint64{0, 1, 13, 31, 62, 63} {
		evalVecTruth(t, p, v.LeqConst(c), 0, 6, func(x uint64) bool { return x <= c })
		evalVecTruth(t, p, v.GeqConst(c), 0, 6, func(x uint64) bool { return x >= c })
	}
}

func TestVecInRange(t *testing.T) {
	p := NewPool(6)
	v := NewVec(p, 0, 6)
	cases := [][2]uint64{{0, 63}, {5, 5}, {10, 20}, {62, 63}, {0, 0}}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		evalVecTruth(t, p, v.InRange(lo, hi), 0, 6, func(x uint64) bool { return lo <= x && x <= hi })
	}
	if v.InRange(10, 5) != False {
		t.Error("empty range should be False")
	}
}

func TestVecEq(t *testing.T) {
	p := NewPool(8)
	a := NewVec(p, 0, 4)
	b := NewVec(p, 4, 4)
	f := a.Eq(b)
	vals := make([]bool, 8)
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			for i := 0; i < 4; i++ {
				vals[i] = x>>uint(3-i)&1 == 1
				vals[4+i] = y>>uint(3-i)&1 == 1
			}
			if got := p.Eval(f, vals); got != (x == y) {
				t.Fatalf("Eq(%d,%d) = %v", x, y, got)
			}
		}
	}
}

func TestVecPrefixEq(t *testing.T) {
	p := NewPool(8)
	v := NewVec(p, 0, 8)
	// Prefix 0b1010xxxx (value 0xA0, length 4).
	f := v.PrefixEq(0xA0, 4)
	evalVecTruth(t, p, f, 0, 8, func(x uint64) bool { return x>>4 == 0xA })
	// Zero-length prefix matches everything.
	if v.PrefixEq(0xFF, 0) != True {
		t.Error("zero-length prefix should be True")
	}
	// Full-length prefix is equality.
	if v.PrefixEq(0x5C, 8) != v.EqConst(0x5C) {
		t.Error("full-length prefix != equality")
	}
}

func TestEncodeDecodeVec(t *testing.T) {
	asg := make(map[int]bool)
	EncodeVec(asg, 3, 10, 777)
	if got := DecodeVec(asg, 3, 10); got != 777 {
		t.Fatalf("round trip: got %d", got)
	}
	// Don't-care bits decode to zero.
	if got := DecodeVec(map[int]bool{}, 0, 16); got != 0 {
		t.Fatalf("empty assignment decoded to %d", got)
	}
}

func TestQuickVecRangeWitness(t *testing.T) {
	// For any lo<=hi, AnySat of InRange yields a value inside the range.
	p := NewPool(10)
	v := NewVec(p, 0, 10)
	check := func(a, b uint16) bool {
		lo := uint64(a) % 1024
		hi := uint64(b) % 1024
		if lo > hi {
			lo, hi = hi, lo
		}
		f := v.InRange(lo, hi)
		asg, ok := p.AnySat(f)
		if !ok {
			return false
		}
		x := DecodeVec(asg, 0, 10)
		return lo <= x && x <= hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickVecCountsRange(t *testing.T) {
	p := NewPool(8)
	v := NewVec(p, 0, 8)
	check := func(a, b uint8) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		f := v.InRange(lo, hi)
		return p.SatCount(f).Int64() == int64(hi-lo+1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixContainment(t *testing.T) {
	// A longer prefix implies its shorter ancestor.
	rng := rand.New(rand.NewSource(5))
	p := NewPool(16)
	v := NewVec(p, 0, 16)
	check := func() bool {
		addr := uint64(rng.Intn(1 << 16))
		short := rng.Intn(17)
		long := short + rng.Intn(17-short)
		fShort := v.PrefixEq(addr, short)
		fLong := v.PrefixEq(addr, long)
		return p.Implies(fLong, fShort) == True
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
