// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with hash-consed nodes, an ITE-based apply, existential quantification,
// model counting and witness extraction.
//
// The engine underpins every symbolic analysis in this repository: ACL header
// spaces, symbolic BGP route spaces, first-match partitions and differential
// policy comparison. Pools are cheap to create and are dropped wholesale when
// an analysis finishes, so no garbage collection of dead nodes is performed.
//
// Variables are identified by their level (0 is the topmost level in the
// ordering). Node handles are plain int32 indices into the pool and are only
// meaningful relative to the pool that produced them.
//
// Both the unique table and the ITE cache are open-addressed, linear-probed
// hash tables sized to powers of two, growing at 3/4 load. The unique table
// stores bare node handles and compares keys against the node array (handle 0
// is the False terminal, which is never hash-consed, so 0 doubles as the
// empty-slot sentinel); the ITE cache stores packed (f,g,h,result) quadruples
// (f is never a terminal at the cache, so f==0 marks an empty slot).
package bdd

import (
	"fmt"
	"math/big"
	"sort"
)

// Node is a handle to a BDD node within a Pool.
type Node int32

// Terminal nodes, shared by every pool.
const (
	False Node = 0
	True  Node = 1
)

type node struct {
	level  int32 // variable level; terminals use level = maxLevel sentinel
	lo, hi Node  // cofactors for var=false / var=true
}

const terminalLevel = int32(1<<31 - 1)

// hashTriple mixes a (level,lo,hi) or (f,g,h) key into a table index seed.
// All three components are non-negative int32s, so the packing is injective
// on the low 64 bits before mixing.
func hashTriple(a, b, c int32) uint64 {
	h := uint64(uint32(a))*0x9e3779b97f4a7c15 ^
		uint64(uint32(b))*0xc2b2ae3d27d4eb4f ^
		uint64(uint32(c))*0x165667b19e3779f9
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// iteEntry is one memoized ITE result; f == 0 marks an empty slot.
type iteEntry struct {
	f, g, h, r Node
}

// Pool owns the node storage and operation caches for one BDD universe.
// A Pool is not safe for concurrent use.
type Pool struct {
	nodes []node

	// unique is the open-addressed hash-consing table: slots hold node
	// handles (0 = empty), keys live in the nodes array.
	unique      []Node
	uniqueCount int

	// ite is the open-addressed operation cache.
	ite      []iteEntry
	iteCount int

	numVars int

	// satMemo caches per-node SatCount sub-results across calls. Nodes are
	// append-only and immutable, so an entry stays valid for the pool's
	// lifetime — except that terminal weighting depends on numVars, so
	// AddVars drops the memo. Grown lazily to len(nodes) on each SatCount.
	satMemo []*big.Int

	stats Counters
}

// Counters is a snapshot of a pool's cumulative workload: how much symbolic
// computation it has performed since creation. Snapshots taken before and
// after an operation (see Sub) attribute BDD work to individual pipeline
// stages in the obs span tracing.
type Counters struct {
	// ITECalls counts entries into ITE, including recursive ones — the
	// engine's fundamental unit of work.
	ITECalls int64 `json:"iteCalls"`
	// UniqueHits counts hash-cons lookups that found an existing node.
	UniqueHits int64 `json:"uniqueHits"`
	// UniqueMisses counts nodes created (hash-cons lookups that missed).
	UniqueMisses int64 `json:"uniqueMisses"`
	// Growths counts unique-table and ITE-cache doublings.
	Growths int64 `json:"growths"`
}

// Sub returns the counter deltas accumulated since the prev snapshot.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		ITECalls:     c.ITECalls - prev.ITECalls,
		UniqueHits:   c.UniqueHits - prev.UniqueHits,
		UniqueMisses: c.UniqueMisses - prev.UniqueMisses,
		Growths:      c.Growths - prev.Growths,
	}
}

// Add returns the element-wise sum of two snapshots.
func (c Counters) Add(other Counters) Counters {
	return Counters{
		ITECalls:     c.ITECalls + other.ITECalls,
		UniqueHits:   c.UniqueHits + other.UniqueHits,
		UniqueMisses: c.UniqueMisses + other.UniqueMisses,
		Growths:      c.Growths + other.Growths,
	}
}

// Counters returns the pool's cumulative workload counters.
func (p *Pool) Counters() Counters { return p.stats }

const initialTableSize = 1024 // power of two

// NewPool creates a pool over numVars variables, levels 0..numVars-1.
func NewPool(numVars int) *Pool {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	p := &Pool{
		nodes:   make([]node, 2, 1024),
		unique:  make([]Node, initialTableSize),
		ite:     make([]iteEntry, initialTableSize),
		numVars: numVars,
	}
	p.nodes[False] = node{level: terminalLevel}
	p.nodes[True] = node{level: terminalLevel}
	return p
}

// NumVars reports the number of variables in the pool's universe.
func (p *Pool) NumVars() int { return p.numVars }

// Size reports the number of live nodes, including the two terminals.
func (p *Pool) Size() int { return len(p.nodes) }

// AddVars grows the universe by n additional variables and returns the level
// of the first new variable. Existing nodes remain valid because levels of
// new variables are appended below all existing ones only in numbering, not
// in ordering semantics; ordering is by level value, so new variables sit at
// the bottom of the order.
func (p *Pool) AddVars(n int) int {
	if n < 0 {
		panic("bdd: negative variable count")
	}
	first := p.numVars
	p.numVars += n
	// Cached sub-counts weight terminals by the old numVars; drop them.
	p.satMemo = nil
	return first
}

func (p *Pool) level(n Node) int32 { return p.nodes[n].level }

// mk returns the hash-consed node (level, lo, hi), applying the reduction
// rule lo==hi.
func (p *Pool) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	mask := uint64(len(p.unique) - 1)
	i := hashTriple(level, int32(lo), int32(hi)) & mask
	for {
		s := p.unique[i]
		if s == 0 {
			break
		}
		nd := &p.nodes[s]
		if nd.level == level && nd.lo == lo && nd.hi == hi {
			p.stats.UniqueHits++
			return s
		}
		i = (i + 1) & mask
	}
	n := Node(len(p.nodes))
	p.nodes = append(p.nodes, node{level: level, lo: lo, hi: hi})
	p.unique[i] = n
	p.uniqueCount++
	p.stats.UniqueMisses++
	if p.uniqueCount*4 >= len(p.unique)*3 {
		p.growUnique()
	}
	return n
}

// growUnique doubles the unique table and reinserts every live handle.
func (p *Pool) growUnique() {
	p.stats.Growths++
	next := make([]Node, len(p.unique)*2)
	mask := uint64(len(next) - 1)
	for _, s := range p.unique {
		if s == 0 {
			continue
		}
		nd := &p.nodes[s]
		i := hashTriple(nd.level, int32(nd.lo), int32(nd.hi)) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = s
	}
	p.unique = next
}

// Var returns the BDD for the single variable at the given level.
func (p *Pool) Var(level int) Node {
	if level < 0 || level >= p.numVars {
		panic(fmt.Sprintf("bdd: variable level %d out of range [0,%d)", level, p.numVars))
	}
	return p.mk(int32(level), False, True)
}

// NVar returns the BDD for the negation of the variable at the given level.
func (p *Pool) NVar(level int) Node {
	if level < 0 || level >= p.numVars {
		panic(fmt.Sprintf("bdd: variable level %d out of range [0,%d)", level, p.numVars))
	}
	return p.mk(int32(level), True, False)
}

// iteLookup probes the operation cache for (f,g,h).
func (p *Pool) iteLookup(f, g, h Node) (Node, bool) {
	mask := uint64(len(p.ite) - 1)
	i := hashTriple(int32(f), int32(g), int32(h)) & mask
	for {
		e := &p.ite[i]
		if e.f == 0 {
			return 0, false
		}
		if e.f == f && e.g == g && e.h == h {
			return e.r, true
		}
		i = (i + 1) & mask
	}
}

// iteInsert memoizes ITE(f,g,h) = r, growing the cache at 3/4 load.
func (p *Pool) iteInsert(f, g, h, r Node) {
	mask := uint64(len(p.ite) - 1)
	i := hashTriple(int32(f), int32(g), int32(h)) & mask
	for p.ite[i].f != 0 {
		i = (i + 1) & mask
	}
	p.ite[i] = iteEntry{f: f, g: g, h: h, r: r}
	p.iteCount++
	if p.iteCount*4 >= len(p.ite)*3 {
		p.growITE()
	}
}

func (p *Pool) growITE() {
	p.stats.Growths++
	next := make([]iteEntry, len(p.ite)*2)
	mask := uint64(len(next) - 1)
	for _, e := range p.ite {
		if e.f == 0 {
			continue
		}
		i := hashTriple(int32(e.f), int32(e.g), int32(e.h)) & mask
		for next[i].f != 0 {
			i = (i + 1) & mask
		}
		next[i] = e
	}
	p.ite = next
}

// ITE computes if-then-else: f ? g : h.
func (p *Pool) ITE(f, g, h Node) Node {
	p.stats.ITECalls++
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := p.iteLookup(f, g, h); ok {
		return r
	}
	top := p.level(f)
	if l := p.level(g); l < top {
		top = l
	}
	if l := p.level(h); l < top {
		top = l
	}
	f0, f1 := p.cofactors(f, top)
	g0, g1 := p.cofactors(g, top)
	h0, h1 := p.cofactors(h, top)
	lo := p.ITE(f0, g0, h0)
	hi := p.ITE(f1, g1, h1)
	r := p.mk(top, lo, hi)
	p.iteInsert(f, g, h, r)
	return r
}

func (p *Pool) cofactors(n Node, level int32) (lo, hi Node) {
	nd := p.nodes[n]
	if nd.level != level {
		return n, n
	}
	return nd.lo, nd.hi
}

// And returns the conjunction of a and b.
func (p *Pool) And(a, b Node) Node { return p.ITE(a, b, False) }

// Or returns the disjunction of a and b.
func (p *Pool) Or(a, b Node) Node { return p.ITE(a, True, b) }

// Not returns the negation of a.
func (p *Pool) Not(a Node) Node { return p.ITE(a, False, True) }

// Xor returns the exclusive or of a and b.
func (p *Pool) Xor(a, b Node) Node { return p.ITE(a, p.Not(b), b) }

// Implies returns a → b.
func (p *Pool) Implies(a, b Node) Node { return p.ITE(a, b, True) }

// Iff returns a ↔ b.
func (p *Pool) Iff(a, b Node) Node { return p.ITE(a, b, p.Not(b)) }

// Diff returns a ∧ ¬b.
func (p *Pool) Diff(a, b Node) Node { return p.ITE(b, False, a) }

// AndN folds And over its arguments; AndN() == True.
func (p *Pool) AndN(ns ...Node) Node {
	r := True
	for _, n := range ns {
		r = p.And(r, n)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over its arguments; OrN() == False.
func (p *Pool) OrN(ns ...Node) Node {
	r := False
	for _, n := range ns {
		r = p.Or(r, n)
		if r == True {
			return True
		}
	}
	return r
}

// nodeMemo is a per-call memo table indexed by node handle. Results are
// stored shifted by one so the zero value means "unset" and the make()
// memclr replaces an explicit sentinel fill. Only nodes reachable from the
// operation's input are memoized, and those all exist when the memo is
// allocated, so handles created mid-operation never index the memo.
type nodeMemo []Node

func newNodeMemo(p *Pool) nodeMemo { return make(nodeMemo, len(p.nodes)) }

func (m nodeMemo) get(n Node) (Node, bool) {
	v := m[n]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

func (m nodeMemo) put(n, r Node) { m[n] = r + 1 }

// Exists existentially quantifies the variables whose levels are in vars.
func (p *Pool) Exists(f Node, vars []int) Node {
	if len(vars) == 0 || f == True || f == False {
		return f
	}
	set := make([]bool, p.numVars)
	for _, v := range vars {
		if v >= 0 && v < len(set) {
			set[v] = true
		}
	}
	memo := newNodeMemo(p)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n == True || n == False {
			return n
		}
		if r, ok := memo.get(n); ok {
			return r
		}
		nd := p.nodes[n]
		lo := rec(nd.lo)
		hi := rec(nd.hi)
		var r Node
		if set[nd.level] {
			r = p.Or(lo, hi)
		} else {
			r = p.mk(nd.level, lo, hi)
		}
		memo.put(n, r)
		return r
	}
	return rec(f)
}

// Restrict substitutes constant values for variables: assignment maps a
// variable level to its value.
func (p *Pool) Restrict(f Node, assignment map[int]bool) Node {
	if len(assignment) == 0 || f == True || f == False {
		return f
	}
	// values[level]: 0 unconstrained, 1 false, 2 true.
	values := make([]uint8, p.numVars)
	for v, b := range assignment {
		if v < 0 || v >= len(values) {
			continue
		}
		if b {
			values[v] = 2
		} else {
			values[v] = 1
		}
	}
	memo := newNodeMemo(p)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n == True || n == False {
			return n
		}
		if r, ok := memo.get(n); ok {
			return r
		}
		nd := p.nodes[n]
		var r Node
		switch values[nd.level] {
		case 2:
			r = rec(nd.hi)
		case 1:
			r = rec(nd.lo)
		default:
			r = p.mk(nd.level, rec(nd.lo), rec(nd.hi))
		}
		memo.put(n, r)
		return r
	}
	return rec(f)
}

// Eval evaluates f under a total assignment: value[level] gives each
// variable's value. Levels absent from the slice range are treated as false.
func (p *Pool) Eval(f Node, value []bool) bool {
	n := f
	for n != True && n != False {
		nd := p.nodes[n]
		if int(nd.level) < len(value) && value[nd.level] {
			n = nd.hi
		} else {
			n = nd.lo
		}
	}
	return n == True
}

// AnySat returns one satisfying partial assignment of f (variable level →
// value). Variables not present in the map are don't-cares. ok is false iff
// f is unsatisfiable.
func (p *Pool) AnySat(f Node) (assignment map[int]bool, ok bool) {
	if f == False {
		return nil, false
	}
	assignment = make(map[int]bool)
	n := f
	for n != True {
		nd := p.nodes[n]
		if nd.lo != False {
			assignment[int(nd.level)] = false
			n = nd.lo
		} else {
			assignment[int(nd.level)] = true
			n = nd.hi
		}
	}
	return assignment, true
}

// SatCount returns the number of total assignments over the pool's universe
// satisfying f. Per-node sub-counts are memoized on the pool across calls
// (nodes are immutable), so repeated counts — the ambiguity ledger's access
// pattern — only pay for nodes not yet visited.
func (p *Pool) SatCount(f Node) *big.Int {
	if n := len(p.nodes); len(p.satMemo) < n {
		if cap(p.satMemo) >= n {
			p.satMemo = p.satMemo[:n]
		} else {
			grown := make([]*big.Int, n, 2*n)
			copy(grown, p.satMemo)
			p.satMemo = grown
		}
	}
	memo := p.satMemo
	var rec func(n Node) *big.Int // count over variables strictly below n's level
	rec = func(n Node) *big.Int {
		if n == False {
			return big.NewInt(0)
		}
		if n == True {
			return big.NewInt(1)
		}
		if c := memo[n]; c != nil {
			return c
		}
		nd := p.nodes[n]
		lo := new(big.Int).Mul(rec(nd.lo), pow2(int(p.gapBelow(nd.lo, nd.level)))) // weight skipped levels
		hi := new(big.Int).Mul(rec(nd.hi), pow2(int(p.gapBelow(nd.hi, nd.level))))
		c := new(big.Int).Add(lo, hi)
		memo[n] = c
		return c
	}
	top := p.level(f)
	gap := int32(0)
	if f == True || f == False {
		gap = int32(p.numVars)
	} else {
		gap = top
	}
	return new(big.Int).Mul(rec(f), pow2(int(gap)))
}

// gapBelow counts the variable levels skipped between parentLevel and child.
func (p *Pool) gapBelow(child Node, parentLevel int32) int32 {
	childLevel := p.level(child)
	if childLevel == terminalLevel {
		childLevel = int32(p.numVars)
	}
	return childLevel - parentLevel - 1
}

func pow2(n int) *big.Int {
	if n < 0 {
		n = 0
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// AllSat invokes fn for each satisfying cube of f. A cube is a partial
// assignment; unmentioned variables are don't-cares. Iteration stops early if
// fn returns false. The cube map is reused across calls; callers must copy it
// to retain it.
func (p *Pool) AllSat(f Node, fn func(cube map[int]bool) bool) {
	cube := make(map[int]bool)
	var rec func(n Node) bool
	rec = func(n Node) bool {
		if n == False {
			return true
		}
		if n == True {
			return fn(cube)
		}
		nd := p.nodes[n]
		cube[int(nd.level)] = false
		if !rec(nd.lo) {
			return false
		}
		cube[int(nd.level)] = true
		if !rec(nd.hi) {
			return false
		}
		delete(cube, int(nd.level))
		return true
	}
	rec(f)
}

// Support returns the sorted levels of the variables f depends on.
func (p *Pool) Support(f Node) []int {
	seen := make([]bool, len(p.nodes))
	levels := make([]bool, p.numVars)
	var rec func(n Node)
	rec = func(n Node) {
		if n == True || n == False || seen[n] {
			return
		}
		seen[n] = true
		nd := p.nodes[n]
		levels[nd.level] = true
		rec(nd.lo)
		rec(nd.hi)
	}
	rec(f)
	var out []int
	for l, in := range levels {
		if in {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}
