// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with hash-consed nodes, an ITE-based apply, existential quantification,
// model counting and witness extraction.
//
// The engine underpins every symbolic analysis in this repository: ACL header
// spaces, symbolic BGP route spaces, first-match partitions and differential
// policy comparison. Pools are cheap to create and are dropped wholesale when
// an analysis finishes, so no garbage collection of dead nodes is performed.
//
// Variables are identified by their level (0 is the topmost level in the
// ordering). Node handles are plain int32 indices into the pool and are only
// meaningful relative to the pool that produced them.
package bdd

import (
	"fmt"
	"math/big"
)

// Node is a handle to a BDD node within a Pool.
type Node int32

// Terminal nodes, shared by every pool.
const (
	False Node = 0
	True  Node = 1
)

type node struct {
	level  int32 // variable level; terminals use level = maxLevel sentinel
	lo, hi Node  // cofactors for var=false / var=true
}

type nodeKey struct {
	level  int32
	lo, hi Node
}

type iteKey struct {
	f, g, h Node
}

const terminalLevel = int32(1<<31 - 1)

// Pool owns the node storage and operation caches for one BDD universe.
// A Pool is not safe for concurrent use.
type Pool struct {
	nodes    []node
	unique   map[nodeKey]Node
	iteCache map[iteKey]Node
	numVars  int
}

// NewPool creates a pool over numVars variables, levels 0..numVars-1.
func NewPool(numVars int) *Pool {
	if numVars < 0 {
		panic("bdd: negative variable count")
	}
	p := &Pool{
		nodes:    make([]node, 2, 1024),
		unique:   make(map[nodeKey]Node, 1024),
		iteCache: make(map[iteKey]Node, 1024),
		numVars:  numVars,
	}
	p.nodes[False] = node{level: terminalLevel}
	p.nodes[True] = node{level: terminalLevel}
	return p
}

// NumVars reports the number of variables in the pool's universe.
func (p *Pool) NumVars() int { return p.numVars }

// Size reports the number of live nodes, including the two terminals.
func (p *Pool) Size() int { return len(p.nodes) }

// AddVars grows the universe by n additional variables and returns the level
// of the first new variable. Existing nodes remain valid because levels of
// new variables are appended below all existing ones only in numbering, not
// in ordering semantics; ordering is by level value, so new variables sit at
// the bottom of the order.
func (p *Pool) AddVars(n int) int {
	if n < 0 {
		panic("bdd: negative variable count")
	}
	first := p.numVars
	p.numVars += n
	return first
}

func (p *Pool) level(n Node) int32 { return p.nodes[n].level }

// mk returns the hash-consed node (level, lo, hi), applying the reduction
// rule lo==hi.
func (p *Pool) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	k := nodeKey{level, lo, hi}
	if n, ok := p.unique[k]; ok {
		return n
	}
	n := Node(len(p.nodes))
	p.nodes = append(p.nodes, node{level: level, lo: lo, hi: hi})
	p.unique[k] = n
	return n
}

// Var returns the BDD for the single variable at the given level.
func (p *Pool) Var(level int) Node {
	if level < 0 || level >= p.numVars {
		panic(fmt.Sprintf("bdd: variable level %d out of range [0,%d)", level, p.numVars))
	}
	return p.mk(int32(level), False, True)
}

// NVar returns the BDD for the negation of the variable at the given level.
func (p *Pool) NVar(level int) Node {
	if level < 0 || level >= p.numVars {
		panic(fmt.Sprintf("bdd: variable level %d out of range [0,%d)", level, p.numVars))
	}
	return p.mk(int32(level), True, False)
}

// ITE computes if-then-else: f ? g : h.
func (p *Pool) ITE(f, g, h Node) Node {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	k := iteKey{f, g, h}
	if r, ok := p.iteCache[k]; ok {
		return r
	}
	top := p.level(f)
	if l := p.level(g); l < top {
		top = l
	}
	if l := p.level(h); l < top {
		top = l
	}
	f0, f1 := p.cofactors(f, top)
	g0, g1 := p.cofactors(g, top)
	h0, h1 := p.cofactors(h, top)
	lo := p.ITE(f0, g0, h0)
	hi := p.ITE(f1, g1, h1)
	r := p.mk(top, lo, hi)
	p.iteCache[k] = r
	return r
}

func (p *Pool) cofactors(n Node, level int32) (lo, hi Node) {
	nd := p.nodes[n]
	if nd.level != level {
		return n, n
	}
	return nd.lo, nd.hi
}

// And returns the conjunction of a and b.
func (p *Pool) And(a, b Node) Node { return p.ITE(a, b, False) }

// Or returns the disjunction of a and b.
func (p *Pool) Or(a, b Node) Node { return p.ITE(a, True, b) }

// Not returns the negation of a.
func (p *Pool) Not(a Node) Node { return p.ITE(a, False, True) }

// Xor returns the exclusive or of a and b.
func (p *Pool) Xor(a, b Node) Node { return p.ITE(a, p.Not(b), b) }

// Implies returns a → b.
func (p *Pool) Implies(a, b Node) Node { return p.ITE(a, b, True) }

// Iff returns a ↔ b.
func (p *Pool) Iff(a, b Node) Node { return p.ITE(a, b, p.Not(b)) }

// Diff returns a ∧ ¬b.
func (p *Pool) Diff(a, b Node) Node { return p.ITE(b, False, a) }

// AndN folds And over its arguments; AndN() == True.
func (p *Pool) AndN(ns ...Node) Node {
	r := True
	for _, n := range ns {
		r = p.And(r, n)
		if r == False {
			return False
		}
	}
	return r
}

// OrN folds Or over its arguments; OrN() == False.
func (p *Pool) OrN(ns ...Node) Node {
	r := False
	for _, n := range ns {
		r = p.Or(r, n)
		if r == True {
			return True
		}
	}
	return r
}

// Exists existentially quantifies the variables whose levels are in vars.
func (p *Pool) Exists(f Node, vars []int) Node {
	if len(vars) == 0 {
		return f
	}
	set := make(map[int32]bool, len(vars))
	for _, v := range vars {
		set[int32(v)] = true
	}
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n == True || n == False {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		nd := p.nodes[n]
		lo := rec(nd.lo)
		hi := rec(nd.hi)
		var r Node
		if set[nd.level] {
			r = p.Or(lo, hi)
		} else {
			r = p.mk(nd.level, lo, hi)
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Restrict substitutes constant values for variables: assignment maps a
// variable level to its value.
func (p *Pool) Restrict(f Node, assignment map[int]bool) Node {
	if len(assignment) == 0 {
		return f
	}
	set := make(map[int32]bool, len(assignment))
	for v, b := range assignment {
		set[int32(v)] = b
	}
	memo := make(map[Node]Node)
	var rec func(n Node) Node
	rec = func(n Node) Node {
		if n == True || n == False {
			return n
		}
		if r, ok := memo[n]; ok {
			return r
		}
		nd := p.nodes[n]
		var r Node
		if b, ok := set[nd.level]; ok {
			if b {
				r = rec(nd.hi)
			} else {
				r = rec(nd.lo)
			}
		} else {
			r = p.mk(nd.level, rec(nd.lo), rec(nd.hi))
		}
		memo[n] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a total assignment: value[level] gives each
// variable's value. Levels absent from the slice range are treated as false.
func (p *Pool) Eval(f Node, value []bool) bool {
	n := f
	for n != True && n != False {
		nd := p.nodes[n]
		if int(nd.level) < len(value) && value[nd.level] {
			n = nd.hi
		} else {
			n = nd.lo
		}
	}
	return n == True
}

// AnySat returns one satisfying partial assignment of f (variable level →
// value). Variables not present in the map are don't-cares. ok is false iff
// f is unsatisfiable.
func (p *Pool) AnySat(f Node) (assignment map[int]bool, ok bool) {
	if f == False {
		return nil, false
	}
	assignment = make(map[int]bool)
	n := f
	for n != True {
		nd := p.nodes[n]
		if nd.lo != False {
			assignment[int(nd.level)] = false
			n = nd.lo
		} else {
			assignment[int(nd.level)] = true
			n = nd.hi
		}
	}
	return assignment, true
}

// SatCount returns the number of total assignments over the pool's universe
// satisfying f.
func (p *Pool) SatCount(f Node) *big.Int {
	memo := make(map[Node]*big.Int)
	var rec func(n Node) *big.Int // count over variables strictly below n's level
	rec = func(n Node) *big.Int {
		if n == False {
			return big.NewInt(0)
		}
		if n == True {
			return big.NewInt(1)
		}
		if c, ok := memo[n]; ok {
			return c
		}
		nd := p.nodes[n]
		lo := new(big.Int).Mul(rec(nd.lo), pow2(int(p.gapBelow(nd.lo, nd.level)))) // weight skipped levels
		hi := new(big.Int).Mul(rec(nd.hi), pow2(int(p.gapBelow(nd.hi, nd.level))))
		c := new(big.Int).Add(lo, hi)
		memo[n] = c
		return c
	}
	top := p.level(f)
	gap := int32(0)
	if f == True || f == False {
		gap = int32(p.numVars)
	} else {
		gap = top
	}
	return new(big.Int).Mul(rec(f), pow2(int(gap)))
}

// gapBelow counts the variable levels skipped between parentLevel and child.
func (p *Pool) gapBelow(child Node, parentLevel int32) int32 {
	childLevel := p.level(child)
	if childLevel == terminalLevel {
		childLevel = int32(p.numVars)
	}
	return childLevel - parentLevel - 1
}

func pow2(n int) *big.Int {
	if n < 0 {
		n = 0
	}
	return new(big.Int).Lsh(big.NewInt(1), uint(n))
}

// AllSat invokes fn for each satisfying cube of f. A cube is a partial
// assignment; unmentioned variables are don't-cares. Iteration stops early if
// fn returns false. The cube map is reused across calls; callers must copy it
// to retain it.
func (p *Pool) AllSat(f Node, fn func(cube map[int]bool) bool) {
	cube := make(map[int]bool)
	var rec func(n Node) bool
	rec = func(n Node) bool {
		if n == False {
			return true
		}
		if n == True {
			return fn(cube)
		}
		nd := p.nodes[n]
		cube[int(nd.level)] = false
		if !rec(nd.lo) {
			return false
		}
		cube[int(nd.level)] = true
		if !rec(nd.hi) {
			return false
		}
		delete(cube, int(nd.level))
		return true
	}
	rec(f)
}

// Support returns the sorted levels of the variables f depends on.
func (p *Pool) Support(f Node) []int {
	seen := make(map[Node]bool)
	levels := make(map[int32]bool)
	var rec func(n Node)
	rec = func(n Node) {
		if n == True || n == False || seen[n] {
			return
		}
		seen[n] = true
		nd := p.nodes[n]
		levels[nd.level] = true
		rec(nd.lo)
		rec(nd.hi)
	}
	rec(f)
	out := make([]int, 0, len(levels))
	for l := range levels {
		out = append(out, int(l))
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
