package bdd

import "fmt"

// Vec is a fixed-width bit vector of BDD variables or, more generally, of
// BDD-valued bits. Bit 0 of the vector is the most significant bit, so a Vec
// laid out over consecutive levels keeps numeric comparisons shallow.
type Vec struct {
	pool *Pool
	bits []Node // bits[0] is the MSB
}

// NewVec returns a vector of width fresh variable references starting at
// level offset (MSB first).
func NewVec(p *Pool, offset, width int) Vec {
	bits := make([]Node, width)
	for i := 0; i < width; i++ {
		bits[i] = p.Var(offset + i)
	}
	return Vec{pool: p, bits: bits}
}

// Width reports the number of bits in the vector.
func (v Vec) Width() int { return len(v.bits) }

// Bit returns the BDD for bit i (0 = MSB).
func (v Vec) Bit(i int) Node { return v.bits[i] }

// EqConst returns the BDD asserting v == value. value must fit in the width.
func (v Vec) EqConst(value uint64) Node {
	v.checkFits(value)
	p := v.pool
	r := True
	// Conjunct from LSB up so the resulting BDD is built bottom-up.
	for i := len(v.bits) - 1; i >= 0; i-- {
		bit := value >> uint(len(v.bits)-1-i) & 1
		if bit == 1 {
			r = p.And(v.bits[i], r)
		} else {
			r = p.And(p.Not(v.bits[i]), r)
		}
	}
	return r
}

// Eq returns the BDD asserting v == w bitwise. The vectors must have equal
// width.
func (v Vec) Eq(w Vec) Node {
	if len(v.bits) != len(w.bits) {
		panic(fmt.Sprintf("bdd: width mismatch %d vs %d", len(v.bits), len(w.bits)))
	}
	p := v.pool
	r := True
	for i := len(v.bits) - 1; i >= 0; i-- {
		r = p.And(p.Iff(v.bits[i], w.bits[i]), r)
	}
	return r
}

// LeqConst returns the BDD asserting v <= value (unsigned).
func (v Vec) LeqConst(value uint64) Node {
	v.checkFits(value)
	p := v.pool
	// Build from LSB: leq = (bit < c) ∨ (bit == c ∧ leqRest)
	r := True
	for i := len(v.bits) - 1; i >= 0; i-- {
		c := value >> uint(len(v.bits)-1-i) & 1
		if c == 1 {
			// bit=0 → strictly less regardless of rest; bit=1 → depends on rest.
			r = p.ITE(v.bits[i], r, True)
		} else {
			// bit=1 → strictly greater; bit=0 → depends on rest.
			r = p.ITE(v.bits[i], False, r)
		}
	}
	return r
}

// GeqConst returns the BDD asserting v >= value (unsigned).
func (v Vec) GeqConst(value uint64) Node {
	v.checkFits(value)
	p := v.pool
	r := True
	for i := len(v.bits) - 1; i >= 0; i-- {
		c := value >> uint(len(v.bits)-1-i) & 1
		if c == 1 {
			r = p.ITE(v.bits[i], r, False)
		} else {
			r = p.ITE(v.bits[i], True, r)
		}
	}
	return r
}

// InRange returns the BDD asserting lo <= v <= hi (unsigned).
func (v Vec) InRange(lo, hi uint64) Node {
	if lo > hi {
		return False
	}
	return v.pool.And(v.GeqConst(lo), v.LeqConst(hi))
}

// PrefixEq returns the BDD asserting that the top nbits of v equal the top
// nbits of value, where value is left-aligned in the vector width (the usual
// IP prefix convention: value is the full-width address, nbits the prefix
// length).
func (v Vec) PrefixEq(value uint64, nbits int) Node {
	if nbits < 0 || nbits > len(v.bits) {
		panic(fmt.Sprintf("bdd: prefix length %d out of range [0,%d]", nbits, len(v.bits)))
	}
	p := v.pool
	r := True
	for i := nbits - 1; i >= 0; i-- {
		bit := value >> uint(len(v.bits)-1-i) & 1
		if bit == 1 {
			r = p.And(v.bits[i], r)
		} else {
			r = p.And(p.Not(v.bits[i]), r)
		}
	}
	return r
}

func (v Vec) checkFits(value uint64) {
	if len(v.bits) < 64 && value >= 1<<uint(len(v.bits)) {
		panic(fmt.Sprintf("bdd: value %d does not fit in %d bits", value, len(v.bits)))
	}
}

// DecodeVec extracts the unsigned value of the vector variables at levels
// [offset, offset+width) from a (possibly partial) assignment. Don't-care
// bits default to 0.
func DecodeVec(assignment map[int]bool, offset, width int) uint64 {
	var out uint64
	for i := 0; i < width; i++ {
		out <<= 1
		if assignment[offset+i] {
			out |= 1
		}
	}
	return out
}

// EncodeVec writes value into assignment at levels [offset, offset+width),
// MSB first.
func EncodeVec(assignment map[int]bool, offset, width int, value uint64) {
	for i := 0; i < width; i++ {
		assignment[offset+i] = value>>uint(width-1-i)&1 == 1
	}
}
