package bdd

import "testing"

// BenchmarkITEChain measures raw apply throughput on a deep conjunction.
func BenchmarkITEChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPool(64)
		f := True
		for v := 0; v < 64; v++ {
			f = p.And(f, p.Var(v))
		}
		if f == False {
			b.Fatal("unexpected false")
		}
	}
}

// BenchmarkIntervalConstraint measures the comparator-circuit encoding used
// for local-preference and metric matches.
func BenchmarkIntervalConstraint(b *testing.B) {
	p := NewPool(32)
	v := NewVec(p, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.InRange(uint64(i%1000), uint64(i%1000+100000)) == False {
			b.Fatal("empty interval")
		}
	}
}

// BenchmarkPrefixConstraint measures the IP-prefix encoding.
func BenchmarkPrefixConstraint(b *testing.B) {
	p := NewPool(32)
	v := NewVec(p, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.PrefixEq(0x0A000000|uint64(i%256)<<8, 24)
	}
}

// BenchmarkAnySat measures witness extraction.
func BenchmarkAnySat(b *testing.B) {
	p := NewPool(64)
	v := NewVec(p, 0, 32)
	w := NewVec(p, 32, 32)
	f := p.And(v.InRange(1000, 2000), w.PrefixEq(0x0A000000, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.AnySat(f); !ok {
			b.Fatal("unsat")
		}
	}
}

// BenchmarkSatCount measures model counting.
func BenchmarkSatCount(b *testing.B) {
	p := NewPool(48)
	v := NewVec(p, 0, 24)
	w := NewVec(p, 24, 24)
	f := p.Or(v.InRange(5, 500000), w.LeqConst(12345))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.SatCount(f)
	}
}
