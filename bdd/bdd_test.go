package bdd

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	p := NewPool(4)
	if p.And(True, False) != False {
		t.Fatal("True ∧ False != False")
	}
	if p.Or(True, False) != True {
		t.Fatal("True ∨ False != True")
	}
	if p.Not(True) != False || p.Not(False) != True {
		t.Fatal("negation of terminals wrong")
	}
	if p.Size() < 2 {
		t.Fatal("pool missing terminals")
	}
}

func TestVarBasics(t *testing.T) {
	p := NewPool(3)
	x, y := p.Var(0), p.Var(1)
	if p.And(x, p.Not(x)) != False {
		t.Error("x ∧ ¬x != False")
	}
	if p.Or(x, p.Not(x)) != True {
		t.Error("x ∨ ¬x != True")
	}
	if p.And(x, y) == p.Or(x, y) {
		t.Error("x∧y == x∨y")
	}
	if p.NVar(0) != p.Not(x) {
		t.Error("NVar(0) != Not(Var(0))")
	}
}

func TestHashConsing(t *testing.T) {
	p := NewPool(4)
	a := p.And(p.Var(0), p.Var(1))
	b := p.And(p.Var(1), p.Var(0))
	if a != b {
		t.Error("identical functions got distinct nodes")
	}
	c := p.Not(p.Not(a))
	if c != a {
		t.Error("double negation not canonical")
	}
}

func TestITEIdentities(t *testing.T) {
	p := NewPool(5)
	f := p.Xor(p.Var(0), p.Var(2))
	g := p.And(p.Var(1), p.Var(3))
	if p.ITE(True, f, g) != f || p.ITE(False, f, g) != g {
		t.Error("ITE terminal cases wrong")
	}
	if p.ITE(f, g, g) != g {
		t.Error("ITE(f,g,g) != g")
	}
	if p.ITE(f, True, False) != f {
		t.Error("ITE(f,T,F) != f")
	}
}

// evalTruth compares a BDD against a reference boolean function over all
// assignments of numVars variables.
func evalTruth(t *testing.T, p *Pool, f Node, numVars int, ref func(v []bool) bool) {
	t.Helper()
	v := make([]bool, numVars)
	for m := 0; m < 1<<uint(numVars); m++ {
		for i := 0; i < numVars; i++ {
			v[i] = m>>uint(i)&1 == 1
		}
		if got, want := p.Eval(f, v), ref(v); got != want {
			t.Fatalf("assignment %v: got %v want %v", v, got, want)
		}
	}
}

func TestTruthTables(t *testing.T) {
	p := NewPool(4)
	a, b, c := p.Var(0), p.Var(1), p.Var(2)
	f := p.Or(p.And(a, b), p.Xor(b, c))
	evalTruth(t, p, f, 4, func(v []bool) bool {
		return (v[0] && v[1]) || (v[1] != v[2])
	})
	g := p.Implies(a, p.Iff(b, c))
	evalTruth(t, p, g, 4, func(v []bool) bool {
		return !v[0] || (v[1] == v[2])
	})
	d := p.Diff(f, g)
	evalTruth(t, p, d, 4, func(v []bool) bool {
		fv := (v[0] && v[1]) || (v[1] != v[2])
		gv := !v[0] || (v[1] == v[2])
		return fv && !gv
	})
}

func TestAndNOrN(t *testing.T) {
	p := NewPool(4)
	vs := []Node{p.Var(0), p.Var(1), p.Var(2), p.Var(3)}
	all := p.AndN(vs...)
	any := p.OrN(vs...)
	evalTruth(t, p, all, 4, func(v []bool) bool { return v[0] && v[1] && v[2] && v[3] })
	evalTruth(t, p, any, 4, func(v []bool) bool { return v[0] || v[1] || v[2] || v[3] })
	if p.AndN() != True || p.OrN() != False {
		t.Error("empty fold identities wrong")
	}
}

func TestExists(t *testing.T) {
	p := NewPool(3)
	a, b := p.Var(0), p.Var(1)
	f := p.And(a, b)
	ex := p.Exists(f, []int{0})
	// ∃a. a∧b == b
	if ex != b {
		t.Errorf("∃a.(a∧b) != b")
	}
	if p.Exists(f, []int{0, 1}) != True {
		t.Errorf("∃ab.(a∧b) != True")
	}
	if p.Exists(False, []int{0, 1, 2}) != False {
		t.Errorf("∃.False != False")
	}
}

func TestRestrict(t *testing.T) {
	p := NewPool(3)
	a, b := p.Var(0), p.Var(1)
	f := p.Xor(a, b)
	if p.Restrict(f, map[int]bool{0: true}) != p.Not(b) {
		t.Error("f[a:=1] != ¬b")
	}
	if p.Restrict(f, map[int]bool{0: false}) != b {
		t.Error("f[a:=0] != b")
	}
	if p.Restrict(f, map[int]bool{0: true, 1: true}) != False {
		t.Error("f[a:=1,b:=1] != False")
	}
}

func TestAnySat(t *testing.T) {
	p := NewPool(4)
	if _, ok := p.AnySat(False); ok {
		t.Fatal("AnySat(False) should fail")
	}
	f := p.And(p.Var(1), p.Not(p.Var(3)))
	asg, ok := p.AnySat(f)
	if !ok {
		t.Fatal("AnySat failed on satisfiable function")
	}
	v := make([]bool, 4)
	for lvl, val := range asg {
		v[lvl] = val
	}
	if !p.Eval(f, v) {
		t.Fatalf("AnySat returned non-model %v", asg)
	}
}

func TestSatCount(t *testing.T) {
	p := NewPool(4)
	cases := []struct {
		f    Node
		want int64
	}{
		{True, 16},
		{False, 0},
		{p.Var(0), 8},
		{p.And(p.Var(0), p.Var(3)), 4},
		{p.Or(p.Var(1), p.Var(2)), 12},
		{p.Xor(p.Var(0), p.Var(1)), 8},
	}
	for i, c := range cases {
		if got := p.SatCount(c.f); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("case %d: SatCount = %v, want %d", i, got, c.want)
		}
	}
}

func TestSatCountMatchesEnumeration(t *testing.T) {
	const n = 5
	rng := rand.New(rand.NewSource(7))
	p := NewPool(n)
	for trial := 0; trial < 50; trial++ {
		f := randomBDD(rng, p, n, 4)
		var count int64
		v := make([]bool, n)
		for m := 0; m < 1<<n; m++ {
			for i := 0; i < n; i++ {
				v[i] = m>>uint(i)&1 == 1
			}
			if p.Eval(f, v) {
				count++
			}
		}
		if got := p.SatCount(f); got.Cmp(big.NewInt(count)) != 0 {
			t.Fatalf("trial %d: SatCount=%v enumeration=%d", trial, got, count)
		}
	}
}

func TestAllSat(t *testing.T) {
	p := NewPool(3)
	f := p.Or(p.And(p.Var(0), p.Var(1)), p.Not(p.Var(2)))
	total := new(big.Int)
	p.AllSat(f, func(cube map[int]bool) bool {
		free := 3 - len(cube)
		total.Add(total, new(big.Int).Lsh(big.NewInt(1), uint(free)))
		// Every cube must be a model.
		v := make([]bool, 3)
		for lvl, val := range cube {
			v[lvl] = val
		}
		if !p.Eval(f, v) {
			t.Errorf("cube %v not a model", cube)
		}
		return true
	})
	if total.Cmp(p.SatCount(f)) != 0 {
		t.Errorf("AllSat covered %v assignments, SatCount says %v", total, p.SatCount(f))
	}
}

func TestAllSatEarlyStop(t *testing.T) {
	p := NewPool(3)
	f := p.Or(p.Var(0), p.Var(1))
	calls := 0
	p.AllSat(f, func(map[int]bool) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("early stop ignored: %d calls", calls)
	}
}

func TestSupport(t *testing.T) {
	p := NewPool(6)
	f := p.And(p.Var(1), p.Or(p.Var(4), p.Not(p.Var(2))))
	got := p.Support(f)
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestAddVars(t *testing.T) {
	p := NewPool(2)
	f := p.And(p.Var(0), p.Var(1))
	first := p.AddVars(2)
	if first != 2 || p.NumVars() != 4 {
		t.Fatalf("AddVars: first=%d numVars=%d", first, p.NumVars())
	}
	g := p.And(f, p.Var(3))
	evalTruth(t, p, g, 4, func(v []bool) bool { return v[0] && v[1] && v[3] })
}

// randomBDD builds a random function of bounded depth.
func randomBDD(rng *rand.Rand, p *Pool, numVars, depth int) Node {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return True
		case 1:
			return False
		default:
			return p.Var(rng.Intn(numVars))
		}
	}
	a := randomBDD(rng, p, numVars, depth-1)
	b := randomBDD(rng, p, numVars, depth-1)
	switch rng.Intn(4) {
	case 0:
		return p.And(a, b)
	case 1:
		return p.Or(a, b)
	case 2:
		return p.Xor(a, b)
	default:
		return p.Not(a)
	}
}

// TestQuickDeMorgan checks ¬(a∧b) == ¬a ∨ ¬b on randomly built functions.
func TestQuickDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := NewPool(6)
	check := func() bool {
		a := randomBDD(rng, p, 6, 5)
		b := randomBDD(rng, p, 6, 5)
		return p.Not(p.And(a, b)) == p.Or(p.Not(a), p.Not(b))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCanonicity: two structurally different constructions of the same
// function must yield the same node.
func TestQuickCanonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := NewPool(5)
	check := func() bool {
		a := randomBDD(rng, p, 5, 4)
		b := randomBDD(rng, p, 5, 4)
		// a xor b == (a∧¬b) ∨ (¬a∧b)
		lhs := p.Xor(a, b)
		rhs := p.Or(p.And(a, p.Not(b)), p.And(p.Not(a), b))
		return lhs == rhs
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 7
	p := NewPool(n)
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		a := randomBDD(local, p, n, 5)
		b := randomBDD(local, p, n, 5)
		and, or, xor := p.And(a, b), p.Or(a, b), p.Xor(a, b)
		v := make([]bool, n)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		ea, eb := p.Eval(a, v), p.Eval(b, v)
		return p.Eval(and, v) == (ea && eb) &&
			p.Eval(or, v) == (ea || eb) &&
			p.Eval(xor, v) == (ea != eb)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
