// Package spec models the JSON behavioural specifications of §2.1 — the
// intermediate artifact the user eyeballs to confirm the LLM understood the
// intent — and verifies synthesized snippets against them using the symbolic
// engine (the role Batfish's searchRoutePolicies/searchFilters play in the
// paper).
package spec

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/symbolic"
)

// RouteMapSpec is the behavioural specification of a single route-map stanza.
// The JSON shape follows the paper: {"permit": true, "prefix":
// ["100.0.0.0/16:16-23"], "community": "/_300:3_/", "set": {"metric": 55}}.
type RouteMapSpec struct {
	Permit bool `json:"permit"`
	// Prefix entries use "A.B.C.D/L:lo-hi" notation: the route's network
	// falls under A.B.C.D/L with prefix length in [lo,hi]. Multiple entries
	// are alternatives.
	Prefix []string `json:"prefix,omitempty"`
	// Community is a Cisco regex between slashes ("/_300:3_/") or a literal
	// community ("300:3") some community on the route must match.
	Community string `json:"community,omitempty"`
	// ASPath is a Cisco as-path regex between slashes.
	ASPath string `json:"asPath,omitempty"`
	// Exact-value matches; nil means unconstrained.
	LocalPref *uint32 `json:"localPreference,omitempty"`
	Metric    *uint32 `json:"metric,omitempty"`
	Tag       *uint32 `json:"tag,omitempty"`

	Set SetSpec `json:"set,omitempty"`
}

// SetSpec is the transformation half of a route-map spec.
type SetSpec struct {
	Metric      *uint32  `json:"metric,omitempty"`
	LocalPref   *uint32  `json:"localPreference,omitempty"`
	Weight      *uint16  `json:"weight,omitempty"`
	Tag         *uint32  `json:"tag,omitempty"`
	Communities []string `json:"community,omitempty"`
	Additive    bool     `json:"additive,omitempty"`
	NextHop     string   `json:"nextHopIp,omitempty"`
}

// IsZero reports whether no transformation is specified.
func (s SetSpec) IsZero() bool {
	return s.Metric == nil && s.LocalPref == nil && s.Weight == nil &&
		s.Tag == nil && len(s.Communities) == 0 && s.NextHop == ""
}

// ParseRouteMapSpec decodes the JSON form.
func ParseRouteMapSpec(data []byte) (*RouteMapSpec, error) {
	var s RouteMapSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil
}

// JSON renders the spec in the paper's JSON shape.
func (s *RouteMapSpec) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // spec structs are always marshalable
	}
	return string(b)
}

// prefixConstraint is one parsed "A.B.C.D/L:lo-hi" item.
type prefixConstraint struct {
	prefix netip.Prefix
	lo, hi int
}

func parsePrefixConstraint(s string) (prefixConstraint, error) {
	body, rng, hasRange := strings.Cut(s, ":")
	pfx, err := netip.ParsePrefix(body)
	if err != nil {
		return prefixConstraint{}, fmt.Errorf("spec: prefix %q: %v", s, err)
	}
	pc := prefixConstraint{prefix: pfx.Masked(), lo: pfx.Bits(), hi: pfx.Bits()}
	if hasRange {
		loS, hiS, ok := strings.Cut(rng, "-")
		if !ok {
			return prefixConstraint{}, fmt.Errorf("spec: prefix range %q is not lo-hi", s)
		}
		lo, err1 := strconv.Atoi(loS)
		hi, err2 := strconv.Atoi(hiS)
		if err1 != nil || err2 != nil || lo < 0 || hi > 32 || lo > hi || lo < pfx.Bits() {
			return prefixConstraint{}, fmt.Errorf("spec: bad prefix range %q", s)
		}
		pc.lo, pc.hi = lo, hi
	}
	return pc, nil
}

// regexBody strips the /.../ wrapper; a bare literal is returned unchanged
// with exact=true.
func regexBody(s string) (body string, exact bool) {
	if len(s) >= 2 && strings.HasPrefix(s, "/") && strings.HasSuffix(s, "/") {
		return s[1 : len(s)-1], false
	}
	return s, true
}

// ToConfig renders the spec's matchers and transforms as a throwaway IOS
// fragment (an "expected stanza"). Passing this config to
// symbolic.NewRouteSpace alongside the candidate snippet guarantees the
// universe covers the spec's regexes; the expected stanza is also what the
// verifier compares outputs against. List and map names are prefixed to
// avoid collisions.
func (s *RouteMapSpec) ToConfig(prefix string) (*ios.Config, *ios.RouteMap, error) {
	cfg := ios.NewConfig()
	st := &ios.Stanza{Seq: 10, Permit: s.Permit}
	if len(s.Prefix) > 0 {
		name := prefix + "_PFX"
		var entries []ios.PrefixListEntry
		for i, p := range s.Prefix {
			pc, err := parsePrefixConstraint(p)
			if err != nil {
				return nil, nil, err
			}
			e := ios.PrefixListEntry{Seq: (i + 1) * 10, Permit: true, Prefix: pc.prefix}
			if pc.lo != pc.prefix.Bits() || pc.hi != pc.prefix.Bits() {
				e.Ge, e.Le = pc.lo, pc.hi
			}
			entries = append(entries, e)
		}
		cfg.AddPrefixList(name, entries...)
		st.Matches = append(st.Matches, ios.MatchPrefixList{List: name})
	}
	if s.Community != "" {
		name := prefix + "_COMM"
		body, exact := regexBody(s.Community)
		if exact {
			cfg.AddCommunityList(name, false, ios.CommunityListEntry{Permit: true, Values: []string{body}})
		} else {
			cfg.AddCommunityList(name, true, ios.CommunityListEntry{Permit: true, Values: []string{body}})
		}
		st.Matches = append(st.Matches, ios.MatchCommunity{List: name})
	}
	if s.ASPath != "" {
		name := prefix + "_ASP"
		body, _ := regexBody(s.ASPath)
		cfg.AddASPathList(name, ios.ASPathEntry{Permit: true, Regex: body})
		st.Matches = append(st.Matches, ios.MatchASPath{List: name})
	}
	if s.LocalPref != nil {
		st.Matches = append(st.Matches, ios.MatchLocalPref{Value: *s.LocalPref})
	}
	if s.Metric != nil {
		st.Matches = append(st.Matches, ios.MatchMetric{Value: *s.Metric})
	}
	if s.Tag != nil {
		st.Matches = append(st.Matches, ios.MatchTag{Value: *s.Tag})
	}
	if s.Permit {
		st.Sets = s.Set.clauses()
	}
	rm := cfg.AddRouteMap(prefix + "_MAP")
	rm.Stanzas = append(rm.Stanzas, st)
	return cfg, rm, nil
}

func (s SetSpec) clauses() []ios.SetClause {
	var out []ios.SetClause
	if s.Metric != nil {
		out = append(out, ios.SetMetric{Value: *s.Metric})
	}
	if s.LocalPref != nil {
		out = append(out, ios.SetLocalPref{Value: *s.LocalPref})
	}
	if len(s.Communities) > 0 {
		out = append(out, ios.SetCommunity{Communities: s.Communities, Additive: s.Additive})
	}
	if s.Weight != nil {
		out = append(out, ios.SetWeight{Value: *s.Weight})
	}
	if s.Tag != nil {
		out = append(out, ios.SetTag{Value: *s.Tag})
	}
	if s.NextHop != "" {
		out = append(out, ios.SetNextHop{Addr: netip.MustParseAddr(s.NextHop)})
	}
	return out
}

// Violation is one way a snippet can fail its spec, with a witness.
type Violation struct {
	Kind    ViolationKind
	Details string
}

// ViolationKind enumerates spec-violation categories.
type ViolationKind int

// Violation categories reported by VerifyRouteMapSnippet.
const (
	// MissedInput: a route the spec covers is not matched by the stanza.
	MissedInput ViolationKind = iota
	// ExtraInput: a route outside the spec is matched by the stanza.
	ExtraInput
	// WrongAction: the stanza matches but permits/denies incorrectly or
	// transforms attributes differently from the spec.
	WrongAction
)

func (k ViolationKind) String() string {
	switch k {
	case MissedInput:
		return "missed-input"
	case ExtraInput:
		return "extra-input"
	case WrongAction:
		return "wrong-action"
	default:
		return "unknown"
	}
}

// VerifyRouteMapSnippet checks a one-stanza snippet against the spec:
//
//  1. every route in the spec's input region is matched by the stanza and
//     receives the spec's action/transforms (completeness);
//  2. no route outside the spec's input region matches the stanza
//     (soundness).
//
// Returns nil when the snippet is behaviourally exactly the spec.
func VerifyRouteMapSnippet(snippet *ios.Config, mapName string, s *RouteMapSpec) ([]Violation, error) {
	return VerifyRouteMapSnippetCached(nil, snippet, mapName, s)
}

// VerifyRouteMapSnippetCached is VerifyRouteMapSnippet drawing its symbolic
// universe from cache (which may be nil). Repeated verifications whose
// snippet + spec regexes are unchanged — every synthesis retry, and every
// re-verification of a reused intent — hit the cache and skip universe
// construction entirely.
func VerifyRouteMapSnippetCached(cache *symbolic.SpaceCache, snippet *ios.Config, mapName string, s *RouteMapSpec) ([]Violation, error) {
	return VerifyRouteMapSnippetTraced(cache, snippet, mapName, s, nil)
}

// VerifyRouteMapSnippetTraced is VerifyRouteMapSnippetCached annotating sp
// (which may be nil) with the BDD workload the verification performed.
func VerifyRouteMapSnippetTraced(cache *symbolic.SpaceCache, snippet *ios.Config, mapName string, s *RouteMapSpec, sp *obs.Span) ([]Violation, error) {
	rm, ok := snippet.RouteMaps[mapName]
	if !ok {
		return nil, fmt.Errorf("spec: snippet lacks route-map %q", mapName)
	}
	if len(rm.Stanzas) != 1 {
		return []Violation{{Kind: WrongAction, Details: fmt.Sprintf("snippet has %d stanzas, want exactly 1", len(rm.Stanzas))}}, nil
	}
	specCfg, specRM, err := s.ToConfig("SPEC")
	if err != nil {
		return nil, err
	}
	space, err := cache.Acquire(snippet, specCfg)
	if err != nil {
		return nil, err
	}
	// Annotate before Release files the space back: a concurrent acquirer
	// may advance its counters afterwards (defers run LIFO).
	defer cache.Release(space)
	defer space.ObserveInto(sp, space.Pool.Counters())
	p := space.Pool
	actualSt := rm.Stanzas[0]
	expectSt := specRM.Stanzas[0]
	actualPred, err := space.StanzaPred(snippet, actualSt)
	if err != nil {
		return nil, err
	}
	specPred, err := space.StanzaPred(specCfg, expectSt)
	if err != nil {
		return nil, err
	}

	var out []Violation
	// Completeness: spec region not matched.
	if w, ok, err := space.Witness(p.Diff(specPred, actualPred)); err != nil {
		return nil, err
	} else if ok {
		out = append(out, Violation{Kind: MissedInput,
			Details: fmt.Sprintf("route %s (communities %v) should be handled but is not matched", w.Network, w.Communities)})
	}
	// Soundness: stanza matches outside the spec region.
	if w, ok, err := space.Witness(p.Diff(actualPred, specPred)); err != nil {
		return nil, err
	} else if ok {
		out = append(out, Violation{Kind: ExtraInput,
			Details: fmt.Sprintf("route %s (communities %v) is matched but outside the specified behaviour", w.Network, w.Communities)})
	}
	// Action/transform agreement on the common region.
	if actualSt.Permit != s.Permit {
		out = append(out, Violation{Kind: WrongAction,
			Details: fmt.Sprintf("stanza action %v, spec wants %v", actualSt.Permit, s.Permit)})
		return out, nil
	}
	outEq, err := space.OutputEqual(actualSt, expectSt)
	if err != nil {
		return nil, err
	}
	if w, ok, err := space.Witness(p.Diff(p.And(specPred, actualPred), outEq)); err != nil {
		return nil, err
	} else if ok {
		out = append(out, Violation{Kind: WrongAction,
			Details: fmt.Sprintf("route %s receives a different transformation than specified", w.Network)})
	}
	return out, nil
}

// ---------- ACL specs ----------

// ACLSpec is the behavioural specification of a single ACL entry.
type ACLSpec struct {
	Permit      bool   `json:"permit"`
	Protocol    string `json:"protocol"` // "ip", "tcp", "udp", "icmp" or a number
	Src         string `json:"src"`      // "any", "A.B.C.D" (host), or CIDR
	Dst         string `json:"dst"`
	SrcPort     string `json:"srcPort,omitempty"` // "eq N" | "range A B" | "lt N" | "gt N" | "neq N"
	DstPort     string `json:"dstPort,omitempty"`
	Established bool   `json:"established,omitempty"`
	// ICMP is an icmp-type phrase ("echo", "unreachable 1"); only with
	// protocol icmp.
	ICMP string `json:"icmp,omitempty"`
}

// ParseACLSpec decodes the JSON form.
func ParseACLSpec(data []byte) (*ACLSpec, error) {
	var s ACLSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil
}

// JSON renders the spec.
func (s *ACLSpec) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err)
	}
	return string(b)
}

// ToACE renders the spec as the expected access-control entry.
func (s *ACLSpec) ToACE() (*ios.ACE, error) {
	line := actionWord(s.Permit) + " " + s.Protocol + " " + addrWords(s.Src)
	if s.SrcPort != "" {
		line += " " + s.SrcPort
	}
	line += " " + addrWords(s.Dst)
	if s.DstPort != "" {
		line += " " + s.DstPort
	}
	if s.ICMP != "" {
		line += " " + s.ICMP
	}
	if s.Established {
		line += " established"
	}
	cfg, err := ios.Parse("ip access-list extended SPEC\n " + line + "\n")
	if err != nil {
		return nil, fmt.Errorf("spec: cannot render ACE: %w", err)
	}
	return cfg.ACLs["SPEC"].Entries[0], nil
}

func actionWord(permit bool) string {
	if permit {
		return "permit"
	}
	return "deny"
}

// addrWords renders a spec address in IOS syntax: any, host, or
// prefix+wildcard.
func addrWords(s string) string {
	if s == "any" || s == "" {
		return "any"
	}
	if pfx, err := netip.ParsePrefix(s); err == nil {
		switch pfx.Bits() {
		case 32:
			return "host " + pfx.Addr().String()
		case 0:
			return "any"
		}
		wild := uint32(0xFFFFFFFF) >> uint(pfx.Bits())
		return pfx.Masked().Addr().String() + " " + ios.U32ToAddr(wild).String()
	}
	return "host " + s
}

// VerifyACLSnippet checks a one-entry ACL snippet against the spec, using the
// same completeness/soundness decomposition as route maps. Transformations do
// not exist for ACLs, so only the match region and action are compared.
func VerifyACLSnippet(snippet *ios.Config, aclName string, s *ACLSpec) ([]Violation, error) {
	return VerifyACLSnippetTraced(snippet, aclName, s, nil)
}

// VerifyACLSnippetTraced is VerifyACLSnippet annotating sp (which may be
// nil) with the BDD workload the verification performed.
func VerifyACLSnippetTraced(snippet *ios.Config, aclName string, s *ACLSpec, sp *obs.Span) ([]Violation, error) {
	acl, ok := snippet.ACLs[aclName]
	if !ok {
		return nil, fmt.Errorf("spec: snippet lacks ACL %q", aclName)
	}
	if len(acl.Entries) != 1 {
		return []Violation{{Kind: WrongAction, Details: fmt.Sprintf("snippet has %d entries, want exactly 1", len(acl.Entries))}}, nil
	}
	expected, err := s.ToACE()
	if err != nil {
		return nil, err
	}
	space := symbolic.NewACLSpace()
	defer space.ObserveInto(sp, space.Pool.Counters())
	actual := space.ACEPred(acl.Entries[0])
	want := space.ACEPred(expected)
	var out []Violation
	if pk, ok := space.Witness(space.Pool.Diff(want, actual)); ok {
		out = append(out, Violation{Kind: MissedInput,
			Details: fmt.Sprintf("packet %s should be covered but is not", pk)})
	}
	if pk, ok := space.Witness(space.Pool.Diff(actual, want)); ok {
		out = append(out, Violation{Kind: ExtraInput,
			Details: fmt.Sprintf("packet %s is covered but outside the specified behaviour", pk)})
	}
	if acl.Entries[0].Permit != s.Permit {
		out = append(out, Violation{Kind: WrongAction,
			Details: fmt.Sprintf("entry action %v, spec wants %v", acl.Entries[0].Permit, s.Permit)})
	}
	return out, nil
}

// U32ptr is a small helper for building specs in code.
func U32ptr(v uint32) *uint32 { return &v }

// U16ptr returns a pointer to v.
func U16ptr(v uint16) *uint16 { return &v }
