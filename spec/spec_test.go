package spec

import (
	"strings"
	"testing"

	"github.com/clarifynet/clarify/ios"
)

// The paper's §2.1 spec for the SET_METRIC snippet.
func paperSpec() *RouteMapSpec {
	return &RouteMapSpec{
		Permit:    true,
		Prefix:    []string{"100.0.0.0/16:16-23"},
		Community: "/_300:3_/",
		Set:       SetSpec{Metric: U32ptr(55)},
	}
}

const paperSnippet = `ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 seq 10 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
`

func TestPaperSpecJSONRoundTrip(t *testing.T) {
	s := paperSpec()
	j := s.JSON()
	for _, want := range []string{`"permit": true`, `"100.0.0.0/16:16-23"`, `"/_300:3_/"`, `"metric": 55`} {
		if !strings.Contains(j, want) {
			t.Errorf("JSON missing %s:\n%s", want, j)
		}
	}
	back, err := ParseRouteMapSpec([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	if back.JSON() != j {
		t.Error("JSON round trip not stable")
	}
}

func TestParseRouteMapSpecRejectsUnknown(t *testing.T) {
	if _, err := ParseRouteMapSpec([]byte(`{"permit":true,"bogus":1}`)); err == nil {
		t.Fatal("unknown field should be rejected")
	}
}

func TestVerifyPaperSnippet(t *testing.T) {
	snippet := ios.MustParse(paperSnippet)
	v, err := VerifyRouteMapSnippet(snippet, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("paper snippet should verify, got violations: %+v", v)
	}
}

func TestVerifyCatchesWrongMaskBound(t *testing.T) {
	// le 24 instead of le 23: matches 100.x/24 routes the spec excludes.
	bad := ios.MustParse(strings.Replace(paperSnippet, "le 23", "le 24", 1))
	v, err := VerifyRouteMapSnippet(bad, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, ExtraInput) {
		t.Fatalf("want extra-input violation, got %+v", v)
	}
}

func TestVerifyCatchesDroppedMatch(t *testing.T) {
	bad := ios.MustParse(strings.Replace(paperSnippet, " match community COM_LIST\n", "", 1))
	v, err := VerifyRouteMapSnippet(bad, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, ExtraInput) {
		t.Fatalf("dropping a match widens the stanza: want extra-input, got %+v", v)
	}
}

func TestVerifyCatchesNarrowedMatch(t *testing.T) {
	bad := ios.MustParse(strings.Replace(paperSnippet, "le 23", "", 1))
	// Without le 23 the entry matches only /16 exactly → misses /17../23.
	v, err := VerifyRouteMapSnippet(bad, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, MissedInput) {
		t.Fatalf("want missed-input violation, got %+v", v)
	}
}

func TestVerifyCatchesWrongMetric(t *testing.T) {
	bad := ios.MustParse(strings.Replace(paperSnippet, "set metric 55", "set metric 56", 1))
	v, err := VerifyRouteMapSnippet(bad, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, WrongAction) {
		t.Fatalf("want wrong-action violation, got %+v", v)
	}
}

func TestVerifyCatchesFlippedAction(t *testing.T) {
	bad := ios.MustParse(strings.Replace(paperSnippet, "route-map SET_METRIC permit 10", "route-map SET_METRIC deny 10", 1))
	v, err := VerifyRouteMapSnippet(bad, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, WrongAction) {
		t.Fatalf("want wrong-action violation, got %+v", v)
	}
}

func TestVerifyCatchesMultipleStanzas(t *testing.T) {
	bad := ios.MustParse(paperSnippet + "route-map SET_METRIC permit 20\n")
	v, err := VerifyRouteMapSnippet(bad, "SET_METRIC", paperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, WrongAction) {
		t.Fatalf("want single-stanza violation, got %+v", v)
	}
}

func TestVerifyMissingMap(t *testing.T) {
	if _, err := VerifyRouteMapSnippet(ios.NewConfig(), "NOPE", paperSpec()); err == nil {
		t.Fatal("missing map should error")
	}
}

func TestSpecWithASPathAndValues(t *testing.T) {
	s := &RouteMapSpec{
		Permit:    true,
		ASPath:    "/_32$/",
		LocalPref: U32ptr(300),
		Set:       SetSpec{LocalPref: U32ptr(400), Communities: []string{"9:9"}, Additive: true},
	}
	snippet := ios.MustParse(`ip as-path access-list ASP permit _32$
route-map M permit 10
 match as-path ASP
 match local-preference 300
 set local-preference 400
 set community 9:9 additive
`)
	v, err := VerifyRouteMapSnippet(snippet, "M", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
	// Missing the additive flag changes behaviour on routes with other
	// communities.
	bad := ios.MustParse(strings.Replace(`ip as-path access-list ASP permit _32$
route-map M permit 10
 match as-path ASP
 match local-preference 300
 set local-preference 400
 set community 9:9 additive
`, " additive", "", 1))
	v, err = VerifyRouteMapSnippet(bad, "M", s)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, WrongAction) {
		t.Fatalf("non-additive set community should violate: %+v", v)
	}
}

func TestPrefixConstraintParsing(t *testing.T) {
	good := map[string][3]int{
		"10.0.0.0/8":       {8, 8, 8},
		"10.0.0.0/8:8-24":  {8, 8, 24},
		"10.0.0.0/8:10-32": {8, 10, 32},
	}
	for in, want := range good {
		pc, err := parsePrefixConstraint(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if pc.prefix.Bits() != want[0] || pc.lo != want[1] || pc.hi != want[2] {
			t.Errorf("%s = %+v, want %v", in, pc, want)
		}
	}
	for _, bad := range []string{"10.0.0.0/8:24-8", "10.0.0.0/8:4-24", "300.0.0.0/8", "10.0.0.0/8:x-y", "10.0.0.0/8:8"} {
		if _, err := parsePrefixConstraint(bad); err == nil {
			t.Errorf("%s should fail", bad)
		}
	}
}

func TestACLSpecVerify(t *testing.T) {
	s := &ACLSpec{Permit: true, Protocol: "tcp", Src: "10.0.0.0/24", Dst: "8.8.8.8", DstPort: "eq 443"}
	good := ios.MustParse("ip access-list extended NEW\n permit tcp 10.0.0.0 0.0.0.255 host 8.8.8.8 eq 443\n")
	v, err := VerifyACLSnippet(good, "NEW", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
	// Wrong port.
	bad := ios.MustParse("ip access-list extended NEW\n permit tcp 10.0.0.0 0.0.0.255 host 8.8.8.8 eq 80\n")
	v, err = VerifyACLSnippet(bad, "NEW", s)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, MissedInput) || !hasKind(v, ExtraInput) {
		t.Fatalf("wrong port should miss and overreach: %+v", v)
	}
	// Wrong action.
	flipped := ios.MustParse("ip access-list extended NEW\n deny tcp 10.0.0.0 0.0.0.255 host 8.8.8.8 eq 443\n")
	v, err = VerifyACLSnippet(flipped, "NEW", s)
	if err != nil {
		t.Fatal(err)
	}
	if !hasKind(v, WrongAction) {
		t.Fatalf("flipped action: %+v", v)
	}
}

func TestACLSpecToACEForms(t *testing.T) {
	cases := []struct {
		spec ACLSpec
		want string
	}{
		{ACLSpec{Permit: true, Protocol: "ip", Src: "any", Dst: "any"}, "permit ip any any"},
		{ACLSpec{Permit: false, Protocol: "udp", Src: "1.2.3.4/32", Dst: "0.0.0.0/0"}, "deny udp host 1.2.3.4 any"},
		{ACLSpec{Permit: true, Protocol: "tcp", Src: "any", Dst: "any", Established: true}, "permit tcp any any established"},
	}
	for _, c := range cases {
		ace, err := c.spec.ToACE()
		if err != nil {
			t.Fatal(err)
		}
		got := ace.String()
		// Strip the sequence number prefix.
		if i := strings.Index(got, " "); i > 0 {
			got = got[i+1:]
		}
		if got != c.want {
			t.Errorf("ToACE = %q, want %q", got, c.want)
		}
	}
}

func TestACLSpecJSONRoundTrip(t *testing.T) {
	s := &ACLSpec{Permit: true, Protocol: "tcp", Src: "any", Dst: "10.0.0.0/8", DstPort: "range 100 200"}
	back, err := ParseACLSpec([]byte(s.JSON()))
	if err != nil {
		t.Fatal(err)
	}
	if *back != *s {
		t.Errorf("round trip: %+v != %+v", back, s)
	}
}

func hasKind(vs []Violation, k ViolationKind) bool {
	for _, v := range vs {
		if v.Kind == k {
			return true
		}
	}
	return false
}
