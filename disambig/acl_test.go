package disambig

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/symbolic"
)

const baseACL = `ip access-list extended EDGE
 deny tcp any any eq 22
 permit udp 10.0.0.0 0.0.0.255 any
 permit tcp any any established
 deny ip any any
`

const aclSnippet = `ip access-list extended NEW_ENTRY
 permit tcp 10.0.0.0 0.0.0.255 any eq 22
`

// targetACL builds EDGE with the new entry inserted at pos.
func targetACL(t *testing.T, pos int) *ios.Config {
	t.Helper()
	cfg := ios.MustParse(baseACL)
	snip := ios.MustParse(aclSnippet)
	cfg.ACLs["EDGE"].InsertEntry(pos, snip.ACLs["NEW_ENTRY"].Entries[0].Clone())
	return cfg
}

func aclEquivalent(t *testing.T, a, b *ios.Config, name string) {
	t.Helper()
	s := symbolic.NewACLSpace()
	pa := s.PermitSet(a.ACLs[name])
	pb := s.PermitSet(b.ACLs[name])
	if pa != pb {
		t.Fatalf("ACLs differ:\n--- got ---\n%s\n--- want ---\n%s", a.Print(), b.Print())
	}
}

func TestACLInsertTop(t *testing.T) {
	orig := ios.MustParse(baseACL)
	snippet := ios.MustParse(aclSnippet)
	target := targetACL(t, 0) // permit 10.0.0.x:22 despite the ssh deny
	user := NewSimUserACL(target, "EDGE")
	res, err := InsertACLEntry(orig, "EDGE", snippet, "NEW_ENTRY", user)
	if err != nil {
		t.Fatal(err)
	}
	// The only distinguishing overlap is entry 0 (deny tcp any any eq 22):
	// it first-match-captures the new entry's whole space, so the catch-all
	// deny at entry 3 never sees those packets and is rightly not probed.
	if len(res.Overlaps) != 1 || res.Overlaps[0] != 0 {
		t.Errorf("overlaps = %v, want [0]", res.Overlaps)
	}
	if len(res.Questions) != 1 {
		t.Errorf("questions = %d, want 1", len(res.Questions))
	}
	if res.Position != 0 {
		t.Errorf("position = %d, want 0", res.Position)
	}
	aclEquivalent(t, res.Config, target, "EDGE")
	if len(orig.ACLs["EDGE"].Entries) != 4 {
		t.Error("original mutated")
	}
}

func TestACLInsertBetween(t *testing.T) {
	// Target: below the ssh deny but above the catch-all deny (positions
	// 1..3 are all equivalent for this entry).
	orig := ios.MustParse(baseACL)
	snippet := ios.MustParse(aclSnippet)
	target := targetACL(t, 2)
	user := NewSimUserACL(target, "EDGE")
	res, err := InsertACLEntry(orig, "EDGE", snippet, "NEW_ENTRY", user)
	if err != nil {
		t.Fatal(err)
	}
	aclEquivalent(t, res.Config, target, "EDGE")
	if got := len(res.Questions); got > 1 {
		t.Errorf("questions = %d, want ≤ 1 for 2 overlaps... bound is ⌈log2(3)⌉=2", got)
	}
	// Sequence numbers renumbered.
	for i, e := range res.Config.ACLs["EDGE"].Entries {
		if e.Seq != (i+1)*10 {
			t.Errorf("entry %d seq = %d", i, e.Seq)
		}
	}
}

func TestACLInsertBottomTarget(t *testing.T) {
	// A new entry whose packets should keep being handled by existing rules
	// everywhere → bottom placement.
	orig := ios.MustParse(baseACL)
	snippet := ios.MustParse("ip access-list extended NEW_ENTRY\n permit ip any any\n")
	target := ios.MustParse(baseACL)
	target.ACLs["EDGE"].InsertEntry(4, ios.MustParse("ip access-list extended X\n permit ip any any\n").ACLs["X"].Entries[0])
	user := NewSimUserACL(target, "EDGE")
	res, err := InsertACLEntry(orig, "EDGE", snippet, "NEW_ENTRY", user)
	if err != nil {
		t.Fatal(err)
	}
	aclEquivalent(t, res.Config, target, "EDGE")
	if res.Position != 4 {
		t.Errorf("position = %d, want 4", res.Position)
	}
}

func TestACLQuestionShape(t *testing.T) {
	orig := ios.MustParse(baseACL)
	snippet := ios.MustParse(aclSnippet)
	target := targetACL(t, 0)
	var questions []ACLQuestion
	oracle := FuncACLOracle(func(q ACLQuestion) (bool, error) {
		questions = append(questions, q)
		return NewSimUserACL(target, "EDGE").ChooseACL(q)
	})
	if _, err := InsertACLEntry(orig, "EDGE", snippet, "NEW_ENTRY", oracle); err != nil {
		t.Fatal(err)
	}
	for _, q := range questions {
		if q.NewPermit == q.OldPermit {
			t.Error("question options identical")
		}
		// Inputs must match the new entry: tcp from 10.0.0.0/24 port 22.
		if q.Input.Protocol != 6 || q.Input.DstPort != 22 {
			t.Errorf("question input does not match new entry: %s", q.Input)
		}
	}
}

func TestACLInsertErrors(t *testing.T) {
	orig := ios.MustParse(baseACL)
	snippet := ios.MustParse(aclSnippet)
	if _, err := InsertACLEntry(orig, "NOPE", snippet, "NEW_ENTRY", nil); err == nil {
		t.Error("missing ACL should fail")
	}
	if _, err := InsertACLEntry(orig, "EDGE", snippet, "NOPE", nil); err == nil {
		t.Error("missing snippet ACL should fail")
	}
}

// TestQuickACLDisambiguation mirrors the route-map property: random ACLs,
// random entries, every target position → equivalent result.
func TestQuickACLDisambiguation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		origCfg := testgen.ACL(rng, "A", 5)
		entry := testgen.RandomACE(rng, 10)
		snippet := ios.NewConfig()
		snippet.AddACL("NEW").Entries = append(snippet.AddACL("NEW").Entries, entry)

		targetPos := rng.Intn(len(origCfg.ACLs["A"].Entries) + 1)
		target := origCfg.Clone()
		target.ACLs["A"].InsertEntry(targetPos, entry.Clone())

		user := NewSimUserACL(target, "A")
		res, err := InsertACLEntry(origCfg, "A", snippet, "NEW", user)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, origCfg.Print())
		}
		s := symbolic.NewACLSpace()
		if s.PermitSet(res.Config.ACLs["A"]) != s.PermitSet(target.ACLs["A"]) {
			t.Fatalf("trial %d: result not equivalent to target\ngot:\n%s\nwant:\n%s",
				trial, res.Config.Print(), target.Print())
		}
		// Random probing double-check.
		for i := 0; i < 100; i++ {
			pk := testgen.Packet(rng)
			if policy.EvalACL(res.Config.ACLs["A"], pk).Permit != policy.EvalACL(target.ACLs["A"], pk).Permit {
				t.Fatalf("trial %d: packet %s differs", trial, pk)
			}
		}
	}
}

func TestACLFirstMatchRegionsUsedForOverlaps(t *testing.T) {
	// Entry 1 is fully shadowed by entry 0 on the new entry's space → it
	// must not be probed.
	orig := ios.MustParse(`ip access-list extended A
 deny tcp any any eq 80
 deny tcp 1.0.0.0 0.255.255.255 any eq 80
 permit ip any any
`)
	snippet := ios.MustParse("ip access-list extended N\n permit tcp 1.0.0.0 0.255.255.255 any eq 80\n")
	target := orig.Clone()
	target.ACLs["A"].InsertEntry(0, snippet.ACLs["N"].Entries[0].Clone())
	res, err := InsertACLEntry(orig, "A", snippet, "N", NewSimUserACL(target, "A"))
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Overlaps {
		if o == 1 {
			t.Error("shadowed entry 1 should not be a probe")
		}
	}
	_ = policy.ImplicitDeny
}
