package disambig

import (
	"strings"
	"testing"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
)

func TestRouteQuestionString(t *testing.T) {
	r := route.New("100.0.0.0/16").WithASPath(32).WithCommunities("300:3")
	out := policy.ApplySets([]ios.SetClause{ios.SetMetric{Value: 55}}, r)
	q := RouteQuestion{
		Input:      r,
		NewVerdict: policy.RouteVerdict{Permit: true, Output: out},
		OldVerdict: policy.RouteVerdict{Permit: false, Output: r},
	}
	s := q.String()
	// Mirrors the paper's §2.2 presentation: the input route, OPTION 1 with
	// the transformed attributes, OPTION 2 with "ACTION: deny".
	for _, want := range []string{
		"Network: 100.0.0.0/16",
		"OPTION 1", "ACTION: permit", "Metric: 55",
		"OPTION 2", "ACTION: deny",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("question rendering missing %q:\n%s", want, s)
		}
	}
}

func TestACLQuestionString(t *testing.T) {
	q := ACLQuestion{NewPermit: true, OldPermit: false}
	s := q.String()
	if !strings.Contains(s, "OPTION 1 (new entry applies): permit") ||
		!strings.Contains(s, "OPTION 2 (existing behavior): deny") {
		t.Errorf("rendering = %q", s)
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		StrategyBinary: "binary", StrategyLinear: "linear",
		StrategyTopBottom: "top-bottom", Strategy(9): "strategy(9)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Strategy(%d) = %q, want %q", int(st), st.String(), want)
		}
	}
	kinds := map[ListKind]string{
		KindPrefixList: "prefix-list", KindCommunityList: "community-list",
		KindASPathList: "as-path list", ListKind(9): "list",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("ListKind(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestStrategyDispatch(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	for _, strat := range []Strategy{StrategyBinary, StrategyLinear, StrategyTopBottom} {
		target := figure2ForStrategy(t, 0)
		user := NewSimUserRouteMap(target, "ISP_OUT")
		res, err := InsertRouteMapStanzaStrategy(strat, orig, "ISP_OUT", snippet, "SET_METRIC", user)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Position != 0 {
			t.Errorf("%v: position = %d", strat, res.Position)
		}
	}
}

// figure2ForStrategy builds the Figure 2 target without colliding with the
// helper in disambig_test.go.
func figure2ForStrategy(t *testing.T, pos int) *ios.Config {
	t.Helper()
	cfg := ios.MustParse(paperISPOut + `ip community-list expanded D2 permit _300:3_
ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23
`)
	st := &ios.Stanza{
		Permit:  true,
		Matches: []ios.Match{ios.MatchCommunity{List: "D2"}, ios.MatchPrefixList{List: "D3"}},
		Sets:    []ios.SetClause{ios.SetMetric{Value: 55}},
	}
	cfg.RouteMaps["ISP_OUT"].InsertStanza(pos, st)
	return cfg
}
