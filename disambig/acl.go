package disambig

import (
	"fmt"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/symbolic"
)

// ACLResult reports a completed ACL insertion.
type ACLResult struct {
	Config    *ios.Config
	Position  int
	Questions []ACLQuestion
	Overlaps  []int
	// Ambiguity is the run's information-gain ledger; nil when untraced.
	Ambiguity *ambiguity.Ledger
}

// InsertACLEntry runs the disambiguation flow for access lists: locate the
// entries whose first-match regions intersect the new entry with a different
// action, binary-search the insertion gap, insert and renumber.
func InsertACLEntry(orig *ios.Config, aclName string, snippet *ios.Config, snippetACL string, oracle ACLOracle) (*ACLResult, error) {
	return insertACLEntry(orig, aclName, snippet, snippetACL, oracle, nil)
}

// insertACLEntry is the shared implementation, charging the symbolic work
// and oracle waits to sp (which may be nil).
func insertACLEntry(orig *ios.Config, aclName string, snippet *ios.Config, snippetACL string, oracle ACLOracle, sp *obs.Span) (*ACLResult, error) {
	if sp != nil {
		oracle = &tracedACLOracle{oracle: oracle, sp: sp}
	}
	if _, ok := orig.ACLs[aclName]; !ok {
		return nil, fmt.Errorf("disambig: ACL %q not in configuration", aclName)
	}
	snipACL, ok := snippet.ACLs[snippetACL]
	if !ok {
		return nil, fmt.Errorf("disambig: snippet lacks ACL %q", snippetACL)
	}
	if len(snipACL.Entries) != 1 {
		return nil, fmt.Errorf("disambig: snippet has %d entries, want exactly 1", len(snipACL.Entries))
	}
	work := orig.Clone()
	acl := work.ACLs[aclName]
	newEntry := snipACL.Entries[0].Clone()

	space := symbolic.NewACLSpace()
	defer space.ObserveInto(sp, space.Pool.Counters())
	regions := space.FirstMatch(acl)
	predNew := space.ACEPred(newEntry)

	type probe struct {
		entry    int
		question ACLQuestion
		region   bdd.Node
	}
	var probes []probe
	for i, e := range acl.Entries {
		if e.Permit == newEntry.Permit {
			continue // same action: placement relative to this entry is unobservable
		}
		shared := space.Pool.And(regions[i], predNew)
		if shared == bdd.False {
			continue
		}
		pk, ok := space.Witness(shared)
		if !ok {
			continue
		}
		v := policy.EvalACL(acl, pk)
		if v.Index != i {
			// Decode must land in the first-match region by construction;
			// defensive skip otherwise.
			continue
		}
		probes = append(probes, probe{entry: i, question: ACLQuestion{
			Input:       pk,
			NewPermit:   newEntry.Permit,
			OldPermit:   e.Permit,
			ProbedEntry: i,
		}, region: shared})
	}

	var meter *ambiguity.Meter
	if sp != nil {
		pregions := make([]bdd.Node, len(probes))
		for i, p := range probes {
			pregions[i] = p.region
		}
		meter = ambiguity.NewMeter(space.Pool, "acl", StrategyBinary.String(), pregions)
	}

	result := &ACLResult{}
	for _, p := range probes {
		result.Overlaps = append(result.Overlaps, p.entry)
	}
	lo, hi := 0, len(probes)
	for lo < hi {
		mid := (lo + hi) / 2
		q := probes[mid].question
		preferNew, err := oracle.ChooseACL(q)
		if err != nil {
			return nil, err
		}
		result.Questions = append(result.Questions, q)
		if preferNew {
			meter.Question(lo, hi, lo, mid, true)
			hi = mid
		} else {
			meter.Question(lo, hi, mid+1, hi, false)
			lo = mid + 1
		}
	}
	result.Ambiguity = meter.Finish(lo, lo)
	ambiguity.Annotate(sp, result.Ambiguity)
	pos := 0
	if lo > 0 {
		pos = probes[lo-1].entry + 1
	}
	insSp := sp.Child("insert")
	acl.InsertEntry(pos, newEntry)
	insSp.SetInt("position", int64(pos))
	insSp.End()
	result.Config = work
	result.Position = pos
	return result, nil
}
