package disambig

import (
	"math/rand"
	"net/netip"
	"testing"

	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
)

// renumberPrefixList rewrites sequence numbers to match slice order, so
// seq-order evaluation agrees with the intended positions.
func renumberPrefixList(l *ios.PrefixList) {
	for i := range l.Entries {
		l.Entries[i].Seq = (i + 1) * 10
	}
}

// listSemanticsEqual compares two configurations' list verdicts on a random
// route sample.
func listSemanticsEqual(t *testing.T, kind ListKind, name string, a, b *ios.Config, seed int64) {
	t.Helper()
	var clause ios.Match
	switch kind {
	case KindPrefixList:
		clause = ios.MatchPrefixList{List: name}
	case KindCommunityList:
		clause = ios.MatchCommunity{List: name}
	case KindASPathList:
		clause = ios.MatchASPath{List: name}
	}
	evA, evB := policy.NewEvaluator(a), policy.NewEvaluator(b)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 400; i++ {
		r := testgen.Route(rng)
		va, err := evA.MatchHolds(clause, r)
		if err != nil {
			t.Fatal(err)
		}
		vb, err := evB.MatchHolds(clause, r)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb {
			t.Fatalf("%s %s: semantics differ on %s (communities %v, path %v): %v vs %v\n--- got ---\n%s--- want ---\n%s",
				kind, name, r.Network, r.Communities, r.FlatASPath(), va, vb, a.Print(), b.Print())
		}
	}
}

func TestInsertPrefixListEntry(t *testing.T) {
	orig := ios.MustParse(`ip prefix-list L seq 10 deny 10.1.0.0/16 le 24
ip prefix-list L seq 20 permit 10.0.0.0/8 le 24
`)
	// New permit for 10.1.2.0/24 le 32: overlaps the deny (conflicting) and
	// the permit (same action → unobservable).
	entry := ios.PrefixListEntry{Permit: true, Prefix: netip.MustParsePrefix("10.1.2.0/24"), Le: 32}

	// Target: the new permit should win over the deny → position 0.
	target := orig.Clone()
	tl := target.PrefixLists["L"]
	tl.Entries = append([]ios.PrefixListEntry{entry}, tl.Entries...)
	renumberPrefixList(tl)
	user := &SimUserList{Target: target, Kind: KindPrefixList, ListName: "L"}
	res, err := InsertPrefixListEntry(orig, "L", entry, user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 0 {
		t.Errorf("position = %d, want 0", res.Position)
	}
	if len(res.Overlaps) != 1 || res.Overlaps[0] != 0 {
		t.Errorf("overlaps = %v, want [0]", res.Overlaps)
	}
	if len(res.Questions) != 1 {
		t.Errorf("questions = %d", len(res.Questions))
	}
	listSemanticsEqual(t, KindPrefixList, "L", res.Config, target, 1)
	// Sequence numbers renumbered.
	for i, e := range res.Config.PrefixLists["L"].Entries {
		if e.Seq != (i+1)*10 {
			t.Errorf("entry %d seq = %d", i, e.Seq)
		}
	}
	// Original untouched.
	if len(orig.PrefixLists["L"].Entries) != 2 {
		t.Error("original mutated")
	}
}

func TestInsertPrefixListEntryBelow(t *testing.T) {
	orig := ios.MustParse(`ip prefix-list L seq 10 deny 10.1.0.0/16 le 24
ip prefix-list L seq 20 permit 10.0.0.0/8 le 24
`)
	entry := ios.PrefixListEntry{Permit: true, Prefix: netip.MustParsePrefix("10.1.2.0/24"), Le: 32}
	// Target: keep the deny's priority → new entry below it.
	target := orig.Clone()
	tl := target.PrefixLists["L"]
	tl.Entries = append(tl.Entries, ios.PrefixListEntry{})
	copy(tl.Entries[2:], tl.Entries[1:])
	tl.Entries[1] = entry
	renumberPrefixList(tl)
	user := &SimUserList{Target: target, Kind: KindPrefixList, ListName: "L"}
	res, err := InsertPrefixListEntry(orig, "L", entry, user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 1 {
		t.Errorf("position = %d, want 1", res.Position)
	}
	listSemanticsEqual(t, KindPrefixList, "L", res.Config, target, 2)
}

func TestInsertCommunityListEntry(t *testing.T) {
	orig := ios.MustParse(`ip community-list expanded CL deny _300:[0-9]+_
ip community-list expanded CL permit _[0-9]+:[0-9]+_
`)
	entry := ios.CommunityListEntry{Permit: true, Values: []string{"_300:3_"}}
	// Target: permit 300:3 despite the broader 300:* deny → top.
	target := orig.Clone()
	tl := target.CommunityLists["CL"]
	tl.Entries = append([]ios.CommunityListEntry{entry}, tl.Entries...)
	user := &SimUserList{Target: target, Kind: KindCommunityList, ListName: "CL"}
	res, err := InsertCommunityListEntry(orig, "CL", entry, user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 0 {
		t.Errorf("position = %d, want 0", res.Position)
	}
	listSemanticsEqual(t, KindCommunityList, "CL", res.Config, target, 3)
	// The question's witness carries a 300:x community matching both.
	if len(res.Questions) != 1 {
		t.Fatalf("questions = %d", len(res.Questions))
	}
	w := res.Questions[0].Input
	found := false
	for _, c := range w.Communities {
		if c.Hi == 300 {
			found = true
		}
	}
	if !found {
		t.Errorf("witness communities %v lack a 300:x", w.Communities)
	}
}

func TestInsertASPathEntry(t *testing.T) {
	orig := ios.MustParse(`ip as-path access-list A deny _666_
ip as-path access-list A permit .*
`)
	entry := ios.ASPathEntry{Permit: true, Regex: "^666$"}
	// Target: routes whose whole path is just 666 should be permitted → top.
	target := orig.Clone()
	tl := target.ASPathLists["A"]
	tl.Entries = append([]ios.ASPathEntry{entry}, tl.Entries...)
	user := &SimUserList{Target: target, Kind: KindASPathList, ListName: "A"}
	res, err := InsertASPathEntry(orig, "A", entry, user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 0 {
		t.Errorf("position = %d, want 0", res.Position)
	}
	listSemanticsEqual(t, KindASPathList, "A", res.Config, target, 4)
	if user.Asked == 0 {
		t.Error("expected at least one question")
	}
}

func TestListInsertNoConflictNoQuestions(t *testing.T) {
	orig := ios.MustParse("ip prefix-list L seq 10 permit 10.0.0.0/8 le 24\n")
	entry := ios.PrefixListEntry{Permit: true, Prefix: netip.MustParsePrefix("10.2.0.0/16"), Le: 28}
	res, err := InsertPrefixListEntry(orig, "L", entry, FuncListOracle(func(ListQuestion) (bool, error) {
		t.Fatal("same-action overlap must not ask")
		return false, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Questions) != 0 {
		t.Errorf("questions = %d", len(res.Questions))
	}
}

func TestListInsertMissingList(t *testing.T) {
	orig := ios.NewConfig()
	if _, err := InsertPrefixListEntry(orig, "NOPE", ios.PrefixListEntry{}, nil); err == nil {
		t.Error("missing prefix-list should fail")
	}
	if _, err := InsertCommunityListEntry(orig, "NOPE", ios.CommunityListEntry{Values: []string{"1:1"}}, nil); err == nil {
		t.Error("missing community-list should fail")
	}
	if _, err := InsertASPathEntry(orig, "NOPE", ios.ASPathEntry{Regex: "_1_"}, nil); err == nil {
		t.Error("missing as-path list should fail")
	}
}

// TestQuickPrefixListDisambiguation: random prefix lists, random entries,
// random target positions → equivalent semantics.
func TestQuickPrefixListDisambiguation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cidrs := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "20.0.0.0/16", "1.0.0.0/20", "100.0.0.0/16"}
	for trial := 0; trial < 25; trial++ {
		orig := ios.NewConfig()
		n := 2 + rng.Intn(4)
		var entries []ios.PrefixListEntry
		for i := 0; i < n; i++ {
			pfx := netip.MustParsePrefix(cidrs[rng.Intn(len(cidrs))])
			e := ios.PrefixListEntry{
				Seq:    (i + 1) * 10,
				Permit: rng.Intn(2) == 0,
				Prefix: pfx.Masked(),
			}
			if rng.Intn(2) == 0 {
				e.Le = pfx.Bits() + rng.Intn(33-pfx.Bits())
				if e.Le == pfx.Bits() {
					e.Le = 0
				}
			}
			entries = append(entries, e)
		}
		orig.AddPrefixList("L", entries...)

		pfx := netip.MustParsePrefix(cidrs[rng.Intn(len(cidrs))])
		newEntry := ios.PrefixListEntry{Permit: rng.Intn(2) == 0, Prefix: pfx.Masked(), Le: 32}

		targetPos := rng.Intn(n + 1)
		target := orig.Clone()
		tl := target.PrefixLists["L"]
		tl.Entries = append(tl.Entries, ios.PrefixListEntry{})
		copy(tl.Entries[targetPos+1:], tl.Entries[targetPos:])
		tl.Entries[targetPos] = newEntry
		renumberPrefixList(tl)

		user := &SimUserList{Target: target, Kind: KindPrefixList, ListName: "L"}
		res, err := InsertPrefixListEntry(orig, "L", newEntry, user)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, orig.Print())
		}
		listSemanticsEqual(t, KindPrefixList, "L", res.Config, target, int64(trial))
	}
}

// TestQuickCommunityListDisambiguation mirrors the property for community
// lists.
func TestQuickCommunityListDisambiguation(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	regexes := []string{"_300:3_", "_300:[0-9]+_", "_100:1_", "_9:9_", "_[0-9]+:[0-9]+_"}
	for trial := 0; trial < 15; trial++ {
		orig := ios.NewConfig()
		n := 2 + rng.Intn(3)
		var entries []ios.CommunityListEntry
		for i := 0; i < n; i++ {
			entries = append(entries, ios.CommunityListEntry{
				Permit: rng.Intn(2) == 0,
				Values: []string{regexes[rng.Intn(len(regexes))]},
			})
		}
		orig.AddCommunityList("CL", true, entries...)
		newEntry := ios.CommunityListEntry{Permit: rng.Intn(2) == 0, Values: []string{regexes[rng.Intn(len(regexes))]}}

		targetPos := rng.Intn(n + 1)
		target := orig.Clone()
		tl := target.CommunityLists["CL"]
		tl.Entries = append(tl.Entries, ios.CommunityListEntry{})
		copy(tl.Entries[targetPos+1:], tl.Entries[targetPos:])
		tl.Entries[targetPos] = newEntry

		user := &SimUserList{Target: target, Kind: KindCommunityList, ListName: "CL"}
		res, err := InsertCommunityListEntry(orig, "CL", newEntry, user)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, orig.Print())
		}
		listSemanticsEqual(t, KindCommunityList, "CL", res.Config, target, int64(100+trial))
	}
}

func TestListQuestionString(t *testing.T) {
	q := ListQuestion{
		Kind:      KindPrefixList,
		List:      "L",
		Input:     route.New("10.1.2.0/24"),
		NewPermit: true,
		OldPermit: false,
	}
	s := q.String()
	for _, want := range []string{"prefix-list L", "OPTION 1", "permit", "OPTION 2", "deny", "10.1.2.0/24"} {
		if !contains(s, want) {
			t.Errorf("question rendering missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool { return indexOf(s, sub) >= 0 }

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
