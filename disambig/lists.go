package disambig

import (
	"fmt"
	"sort"

	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/symbolic"
)

// This file extends disambiguation to the ancillary data structures the
// paper's §7 lists as future work: "the tool needs support for inserting
// entries into other data structures that can have conflicts like prefix
// lists, community-lists and AS-path lists". Each of these is itself a
// first-match permit/deny rule sequence over routes, so the §4 algorithm
// applies unchanged: compute per-entry first-match regions, keep the
// overlaps whose action differs from the new entry's, binary-search the gap
// with differential route examples.

// ListKind identifies the ancillary list family.
type ListKind int

// List kinds supported by list-level disambiguation.
const (
	KindPrefixList ListKind = iota
	KindCommunityList
	KindASPathList
)

func (k ListKind) String() string {
	switch k {
	case KindPrefixList:
		return "prefix-list"
	case KindCommunityList:
		return "community-list"
	case KindASPathList:
		return "as-path list"
	}
	return "list"
}

// ListQuestion is a differential example for a list insertion: a concrete
// route on which the new entry and the current list disagree.
type ListQuestion struct {
	Kind        ListKind
	List        string
	Input       route.Route
	NewPermit   bool
	OldPermit   bool
	ProbedEntry int
}

// String renders the question in OPTION 1 / OPTION 2 style.
func (q ListQuestion) String() string {
	return fmt.Sprintf("%s %s on route:\n%s\n\nOPTION 1 (new entry applies): %s\nOPTION 2 (existing behavior): %s",
		q.Kind, q.List, q.Input, actionWord(q.NewPermit), actionWord(q.OldPermit))
}

// ListOracle answers list-insertion questions.
type ListOracle interface {
	ChooseList(q ListQuestion) (preferNew bool, err error)
}

// FuncListOracle adapts a function to ListOracle.
type FuncListOracle func(q ListQuestion) (bool, error)

// ChooseList implements ListOracle.
func (f FuncListOracle) ChooseList(q ListQuestion) (bool, error) { return f(q) }

// ListResult reports a completed list insertion.
type ListResult struct {
	Config    *ios.Config
	Position  int // entry index within the (seq-sorted) list
	Questions []ListQuestion
	Overlaps  []int
}

// listProblem abstracts the three list families over a common first-match
// core.
type listProblem struct {
	kind     ListKind
	name     string
	work     *ios.Config
	space    *symbolic.RouteSpace
	preds    []bdd.Node // per existing entry, in evaluation order
	permits  []bool
	newPred  bdd.Node
	newPerm  bool
	insert   func(pos int) // mutates work
	matchRef ios.Match     // clause used to evaluate target semantics concretely
}

// InsertPrefixListEntry disambiguates the placement of a new prefix-list
// entry. Entries are considered in sequence-number order and renumbered
// 10, 20, ... after insertion.
func InsertPrefixListEntry(orig *ios.Config, listName string, entry ios.PrefixListEntry, oracle ListOracle) (*ListResult, error) {
	return InsertPrefixListEntryCached(nil, orig, listName, entry, oracle)
}

// InsertPrefixListEntryCached is InsertPrefixListEntry drawing its symbolic
// universe from cache (which may be nil).
func InsertPrefixListEntryCached(cache *symbolic.SpaceCache, orig *ios.Config, listName string, entry ios.PrefixListEntry, oracle ListOracle) (*ListResult, error) {
	work := orig.Clone()
	l, ok := work.PrefixLists[listName]
	if !ok {
		return nil, fmt.Errorf("disambig: prefix-list %q not in configuration", listName)
	}
	sort.SliceStable(l.Entries, func(i, j int) bool { return l.Entries[i].Seq < l.Entries[j].Seq })
	space, err := cache.Acquire(work)
	if err != nil {
		return nil, err
	}
	defer cache.Release(space)
	p := &listProblem{
		kind:    KindPrefixList,
		name:    listName,
		work:    work,
		space:   space,
		newPred: space.PrefixEntryPred(entry),
		newPerm: entry.Permit,
	}
	for _, e := range l.Entries {
		p.preds = append(p.preds, space.PrefixEntryPred(e))
		p.permits = append(p.permits, e.Permit)
	}
	p.insert = func(pos int) {
		l.Entries = append(l.Entries, ios.PrefixListEntry{})
		copy(l.Entries[pos+1:], l.Entries[pos:])
		l.Entries[pos] = entry
		for i := range l.Entries {
			l.Entries[i].Seq = (i + 1) * 10
		}
	}
	return p.run(oracle)
}

// InsertCommunityListEntry disambiguates the placement of a new
// community-list entry (standard or expanded must match the target list).
func InsertCommunityListEntry(orig *ios.Config, listName string, entry ios.CommunityListEntry, oracle ListOracle) (*ListResult, error) {
	return InsertCommunityListEntryCached(nil, orig, listName, entry, oracle)
}

// InsertCommunityListEntryCached is InsertCommunityListEntry drawing its
// symbolic universe from cache (which may be nil).
func InsertCommunityListEntryCached(cache *symbolic.SpaceCache, orig *ios.Config, listName string, entry ios.CommunityListEntry, oracle ListOracle) (*ListResult, error) {
	work := orig.Clone()
	l, ok := work.CommunityLists[listName]
	if !ok {
		return nil, fmt.Errorf("disambig: community-list %q not in configuration", listName)
	}
	// The new entry's regex/literals must be in the atomic universe: wrap it
	// in a throwaway config.
	wrapper := ios.NewConfig()
	wrapper.AddCommunityList("__NEW__", l.Expanded, entry)
	space, err := cache.Acquire(work, wrapper)
	if err != nil {
		return nil, err
	}
	defer cache.Release(space)
	newPred, err := space.CommunityEntryPred(l.Expanded, entry)
	if err != nil {
		return nil, err
	}
	p := &listProblem{
		kind:    KindCommunityList,
		name:    listName,
		work:    work,
		space:   space,
		newPred: newPred,
		newPerm: entry.Permit,
	}
	for _, e := range l.Entries {
		pred, err := space.CommunityEntryPred(l.Expanded, e)
		if err != nil {
			return nil, err
		}
		p.preds = append(p.preds, pred)
		p.permits = append(p.permits, e.Permit)
	}
	p.insert = func(pos int) {
		l.Entries = append(l.Entries, ios.CommunityListEntry{})
		copy(l.Entries[pos+1:], l.Entries[pos:])
		l.Entries[pos] = entry
	}
	return p.run(oracle)
}

// InsertASPathEntry disambiguates the placement of a new as-path list entry.
func InsertASPathEntry(orig *ios.Config, listName string, entry ios.ASPathEntry, oracle ListOracle) (*ListResult, error) {
	return InsertASPathEntryCached(nil, orig, listName, entry, oracle)
}

// InsertASPathEntryCached is InsertASPathEntry drawing its symbolic universe
// from cache (which may be nil).
func InsertASPathEntryCached(cache *symbolic.SpaceCache, orig *ios.Config, listName string, entry ios.ASPathEntry, oracle ListOracle) (*ListResult, error) {
	work := orig.Clone()
	l, ok := work.ASPathLists[listName]
	if !ok {
		return nil, fmt.Errorf("disambig: as-path list %q not in configuration", listName)
	}
	wrapper := ios.NewConfig()
	wrapper.AddASPathList("__NEW__", entry)
	space, err := cache.Acquire(work, wrapper)
	if err != nil {
		return nil, err
	}
	defer cache.Release(space)
	newPred, err := space.ASPathEntryPred(entry)
	if err != nil {
		return nil, err
	}
	p := &listProblem{
		kind:    KindASPathList,
		name:    listName,
		work:    work,
		space:   space,
		newPred: newPred,
		newPerm: entry.Permit,
	}
	for _, e := range l.Entries {
		pred, err := space.ASPathEntryPred(e)
		if err != nil {
			return nil, err
		}
		p.preds = append(p.preds, pred)
		p.permits = append(p.permits, e.Permit)
	}
	p.insert = func(pos int) {
		l.Entries = append(l.Entries, ios.ASPathEntry{})
		copy(l.Entries[pos+1:], l.Entries[pos:])
		l.Entries[pos] = entry
	}
	return p.run(oracle)
}

// run is the shared §4 core over list entries.
func (p *listProblem) run(oracle ListOracle) (*ListResult, error) {
	pool := p.space.Pool
	type probe struct {
		entry    int
		question ListQuestion
	}
	var probes []probe
	notPrev := bdd.True
	for i, pred := range p.preds {
		firstMatch := pool.And(notPrev, pred)
		notPrev = pool.And(notPrev, pool.Not(pred))
		if p.permits[i] == p.newPerm {
			continue // same action: placement unobservable
		}
		shared := pool.AndN(firstMatch, p.newPred, p.space.Valid)
		if shared == bdd.False {
			continue
		}
		w, ok, err := p.space.Witness(shared)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		probes = append(probes, probe{entry: i, question: ListQuestion{
			Kind:        p.kind,
			List:        p.name,
			Input:       w,
			NewPermit:   p.newPerm,
			OldPermit:   p.permits[i],
			ProbedEntry: i,
		}})
	}
	res := &ListResult{}
	for _, pr := range probes {
		res.Overlaps = append(res.Overlaps, pr.entry)
	}
	lo, hi := 0, len(probes)
	for lo < hi {
		mid := (lo + hi) / 2
		preferNew, err := oracle.ChooseList(probes[mid].question)
		if err != nil {
			return nil, err
		}
		res.Questions = append(res.Questions, probes[mid].question)
		if preferNew {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	pos := 0
	if lo > 0 {
		pos = probes[lo-1].entry + 1
	}
	p.insert(pos)
	res.Config = p.work
	res.Position = pos
	return res, nil
}

// SimUserList answers list questions from a target configuration's
// semantics, mirroring SimUser for route maps.
type SimUserList struct {
	Target   *ios.Config
	Kind     ListKind
	ListName string
	Asked    int
}

// ChooseList implements ListOracle.
func (u *SimUserList) ChooseList(q ListQuestion) (bool, error) {
	u.Asked++
	ev := policy.NewEvaluator(u.Target)
	var clause ios.Match
	switch u.Kind {
	case KindPrefixList:
		clause = ios.MatchPrefixList{List: u.ListName}
	case KindCommunityList:
		clause = ios.MatchCommunity{List: u.ListName}
	case KindASPathList:
		clause = ios.MatchASPath{List: u.ListName}
	}
	want, err := ev.MatchHolds(clause, q.Input)
	if err != nil {
		return false, err
	}
	switch want {
	case q.NewPermit:
		return true, nil
	case q.OldPermit:
		return false, nil
	}
	return false, fmt.Errorf("disambig: list target matches neither option")
}
