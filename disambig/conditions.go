package disambig

import (
	"fmt"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
)

// CheckIncremental verifies the three §4 conditions relating the original
// semantics M to the updated semantics M′ on a finite input sample:
//
//  1. ∀r. M′(r) = M(r) ∨ M′(r) = S*
//  2. ∀r. M′(r) = S* ⇒ matches(r, S*)
//  3. ∀r,r′. matches(r,S*) ∧ matches(r′,S*) ∧ M′(r)=M(r) ∧ M′(r′)=S*
//     ⇒ M(r) ≤ M(r′)
//
// orig and updated hold the same route-map name; newStanzaIdx is the position
// of S* within the updated map. Rule identity across the two maps is by
// order: updated stanza j corresponds to original stanza j (j < newStanzaIdx)
// or j-1 (j > newStanzaIdx). The implicit deny corresponds to itself.
func CheckIncremental(sample []route.Route, orig, updated *ios.Config, mapName string, newStanzaIdx int) error {
	origRM, ok := orig.RouteMaps[mapName]
	if !ok {
		return fmt.Errorf("disambig: original lacks route-map %q", mapName)
	}
	updRM, ok := updated.RouteMaps[mapName]
	if !ok {
		return fmt.Errorf("disambig: updated lacks route-map %q", mapName)
	}
	if len(updRM.Stanzas) != len(origRM.Stanzas)+1 {
		return fmt.Errorf("disambig: updated map must have exactly one extra stanza")
	}
	evO := policy.NewEvaluator(orig)
	evU := policy.NewEvaluator(updated)
	newStanza := updRM.Stanzas[newStanzaIdx]

	// toOrig maps an updated verdict index to the original rule it
	// corresponds to; the new stanza maps to the sentinel -2.
	const isNew = -2
	toOrig := func(updIdx int) int {
		switch {
		case updIdx == policy.ImplicitDeny:
			return policy.ImplicitDeny
		case updIdx == newStanzaIdx:
			return isNew
		case updIdx > newStanzaIdx:
			return updIdx - 1
		default:
			return updIdx
		}
	}
	// origRank orders original handlers for condition 3: stanza index, with
	// the implicit deny last.
	origRank := func(i int) int {
		if i == policy.ImplicitDeny {
			return len(origRM.Stanzas)
		}
		return i
	}

	type obs struct {
		r       route.Route
		matches bool // matches(r, S*)
		handler int  // original-rule id or isNew
		origIdx int  // M(r)
	}
	observations := make([]obs, 0, len(sample))
	for _, r := range sample {
		vo, err := evO.EvalRouteMap(origRM, r)
		if err != nil {
			return err
		}
		vu, err := evU.EvalRouteMap(updRM, r)
		if err != nil {
			return err
		}
		m, err := evU.StanzaMatches(newStanza, r)
		if err != nil {
			return err
		}
		handler := toOrig(vu.Index)
		// Condition 1.
		if handler != isNew && handler != vo.Index {
			return fmt.Errorf("disambig: condition 1 violated for %s: M'=%d, M=%d", r.Network, handler, vo.Index)
		}
		// Condition 2.
		if handler == isNew && !m {
			return fmt.Errorf("disambig: condition 2 violated for %s: handled by S* without matching it", r.Network)
		}
		observations = append(observations, obs{r: r, matches: m, handler: handler, origIdx: vo.Index})
	}
	// Condition 3 over all pairs.
	for _, a := range observations {
		if !a.matches || a.handler == isNew {
			continue
		}
		for _, b := range observations {
			if !b.matches || b.handler != isNew {
				continue
			}
			if origRank(a.origIdx) > origRank(b.origIdx) {
				return fmt.Errorf("disambig: condition 3 violated: keeper %s (orig rule %d) ranks after mover %s (orig rule %d)",
					a.r.Network, a.origIdx, b.r.Network, b.origIdx)
			}
		}
	}
	return nil
}
