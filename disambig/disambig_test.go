package disambig

import (
	"math"
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/symbolic"
)

const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const paperSnippet = `ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 seq 10 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
`

// figure2 builds the paper's Figure 2 configuration for a given insertion
// position (0=a/top, 1=c, 2=d, 3=b/bottom).
func figure2(t *testing.T, pos int) *ios.Config {
	t.Helper()
	cfg := ios.MustParse(paperISPOut + `ip community-list expanded D2 permit _300:3_
ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23
`)
	st := &ios.Stanza{
		Permit: true,
		Matches: []ios.Match{
			ios.MatchCommunity{List: "D2"},
			ios.MatchPrefixList{List: "D3"},
		},
		Sets: []ios.SetClause{ios.SetMetric{Value: 55}},
	}
	cfg.RouteMaps["ISP_OUT"].InsertStanza(pos, st)
	return cfg
}

func mustEquivalent(t *testing.T, a *ios.Config, b *ios.Config, mapName string) {
	t.Helper()
	space, err := symbolic.NewRouteSpace(a, b)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := analysis.EquivalentRouteMaps(space, a, a.RouteMaps[mapName], b, b.RouteMaps[mapName])
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("configurations not equivalent:\n--- got ---\n%s\n--- want ---\n%s", a.Print(), b.Print())
	}
}

func TestPaperScenarioTopPlacement(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	target := figure2(t, 0) // Figure 2(a): user wants the new stanza to win
	user := NewSimUserRouteMap(target, "ISP_OUT")
	res, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 0 {
		t.Errorf("position = %d, want 0 (top)", res.Position)
	}
	// The distinguishing overlaps are stanza 0 (as-path deny) and stanza 2
	// (local-pref permit); stanza 1 (prefix-list D1) is disjoint.
	if len(res.Overlaps) != 2 || res.Overlaps[0] != 0 || res.Overlaps[1] != 2 {
		t.Errorf("overlaps = %v, want [0 2]", res.Overlaps)
	}
	if len(res.Questions) != 2 {
		t.Errorf("questions = %d, want 2 (= ⌈log₂(2+1)⌉)", len(res.Questions))
	}
	// Figure 2's renaming: COM_LIST→D2, PREFIX_100→D3.
	if res.Renames["COM_LIST"] != "D2" || res.Renames["PREFIX_100"] != "D3" {
		t.Errorf("renames = %v", res.Renames)
	}
	mustEquivalent(t, res.Config, target, "ISP_OUT")
	// Original untouched.
	if len(orig.RouteMaps["ISP_OUT"].Stanzas) != 3 {
		t.Error("original configuration was mutated")
	}
}

func TestPaperScenarioBottomPlacement(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	target := figure2(t, 3) // Figure 2(b)
	user := NewSimUserRouteMap(target, "ISP_OUT")
	res, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", user)
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 3 {
		t.Errorf("position = %d, want 3 (bottom)", res.Position)
	}
	mustEquivalent(t, res.Config, target, "ISP_OUT")
}

func TestPaperScenarioMiddlePlacements(t *testing.T) {
	// Figures 2(c) and 2(d) are semantically equivalent; the algorithm finds
	// a position equivalent to both.
	for _, targetPos := range []int{1, 2} {
		orig := ios.MustParse(paperISPOut)
		snippet := ios.MustParse(paperSnippet)
		target := figure2(t, targetPos)
		user := NewSimUserRouteMap(target, "ISP_OUT")
		res, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", user)
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, res.Config, target, "ISP_OUT")
	}
}

func TestPaperQuestionIsDifferential(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	target := figure2(t, 0)
	var questions []RouteQuestion
	oracle := FuncRouteOracle(func(q RouteQuestion) (bool, error) {
		questions = append(questions, q)
		u := NewSimUserRouteMap(target, "ISP_OUT")
		return u.ChooseRoute(q)
	})
	if _, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", oracle); err != nil {
		t.Fatal(err)
	}
	for _, q := range questions {
		// Every question's input matches the new stanza's conditions:
		// community 300:3 and prefix under 100.0.0.0/16 with length ≤ 23.
		if !q.Input.HasCommunity(route.MustParseCommunity("300:3")) {
			t.Errorf("question input lacks 300:3: %s", q.Input)
		}
		if q.Input.Network.Bits() > 23 {
			t.Errorf("question input outside mask bound: %s", q.Input.Network)
		}
		if analysis.VerdictsEqual(q.NewVerdict, q.OldVerdict) {
			t.Error("question options are observationally identical")
		}
		// OPTION 1 must show metric 55 (the paper's example).
		if q.NewVerdict.Permit && q.NewVerdict.Output.MED != 55 {
			t.Errorf("OPTION 1 metric = %d, want 55", q.NewVerdict.Output.MED)
		}
	}
}

func TestNoOverlapNeedsNoQuestions(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(`ip prefix-list P seq 10 permit 200.0.0.0/8
route-map NEW deny 10
 match ip address prefix-list P
`)
	// 200.0.0.0/8 exactly: disjoint from D1's spaces... but it does overlap
	// stanza 0 (as-path _32$ matches any prefix) — as a deny vs deny pair it
	// is *non-distinguishing*. Stanza 2 (permit lp 300) distinguishes.
	user := NewSimUserRouteMap(figureWith(t, orig, snippet, 0), "ISP_OUT")
	res, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "NEW", user)
	if err != nil {
		t.Fatal(err)
	}
	// Only the lp-300 stanza distinguishes → 1 overlap → 1 question.
	if len(res.Overlaps) != 1 || res.Overlaps[0] != 2 {
		t.Errorf("overlaps = %v, want [2]", res.Overlaps)
	}
	if len(res.Questions) != 1 {
		t.Errorf("questions = %d, want 1", len(res.Questions))
	}
}

// figureWith inserts the snippet's stanza at pos in a copy of orig (generic
// version of figure2 for arbitrary snippets).
func figureWith(t *testing.T, orig *ios.Config, snippet *ios.Config, pos int) *ios.Config {
	t.Helper()
	var name string
	for n := range snippet.RouteMaps {
		name = n
	}
	prep, err := prepare(orig, "ISP_OUT", snippet, name)
	if err != nil {
		t.Fatal(err)
	}
	prep.rm.InsertStanza(pos, prep.stanza)
	return prep.work
}

func TestFullyDisjointInsertsWithoutQuestions(t *testing.T) {
	orig := ios.MustParse(`ip prefix-list PL seq 10 permit 10.0.0.0/8
route-map RM deny 10
 match ip address prefix-list PL
`)
	snippet := ios.MustParse(`ip prefix-list P seq 10 permit 20.0.0.0/8
route-map NEW permit 10
 match ip address prefix-list P
`)
	res, err := InsertRouteMapStanza(orig, "RM", snippet, "NEW",
		FuncRouteOracle(func(RouteQuestion) (bool, error) {
			t.Fatal("no question should be asked")
			return false, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Questions) != 0 || len(res.Overlaps) != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestRenamingAvoidsCapture(t *testing.T) {
	// Original already uses D2: the snippet's lists must skip it.
	orig := ios.MustParse(paperISPOut + "ip prefix-list D2 seq 10 permit 99.0.0.0/8\n")
	snippet := ios.MustParse(paperSnippet)
	target := figureWith(t, orig, snippet, 0)
	res, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", NewSimUserRouteMap(target, "ISP_OUT"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Renames["COM_LIST"] != "D3" || res.Renames["PREFIX_100"] != "D4" {
		t.Errorf("renames = %v, want D3/D4", res.Renames)
	}
	if err := res.Config.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConditionsHoldAfterInsertion(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	target := figure2(t, 2)
	res, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", NewSimUserRouteMap(target, "ISP_OUT"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	sample := make([]route.Route, 300)
	for i := range sample {
		sample[i] = testgen.Route(rng)
	}
	if err := CheckIncremental(sample, orig, res.Config, "ISP_OUT", res.Position); err != nil {
		t.Fatal(err)
	}
}

func TestCheckIncrementalDetectsNonInsertion(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	// "Update" that inserts AND reorders the original stanzas: a route
	// previously handled by the as-path deny is now handled by the lp-300
	// permit — M′(r) is neither M(r) nor S*, violating condition 1.
	bad := figure2(t, 0)
	rm := bad.RouteMaps["ISP_OUT"]
	rm.Stanzas[1], rm.Stanzas[3] = rm.Stanzas[3], rm.Stanzas[1]
	rm.Renumber()
	rng := rand.New(rand.NewSource(10))
	var sample []route.Route
	for i := 0; i < 300; i++ {
		sample = append(sample, testgen.Route(rng))
	}
	// A route matching both the as-path deny (orig first-match) and the
	// lp-300 permit, but not the new stanza.
	lp := route.New("55.0.0.0/16").WithASPath(32)
	lp.LocalPref = 300
	sample = append(sample, lp)
	if err := CheckIncremental(sample, orig, bad, "ISP_OUT", 0); err == nil {
		t.Fatal("condition 1 violation not detected")
	}
}

// TestQuickDisambiguationFindsTarget is the core correctness property:
// for random configs, random snippets and every possible target position,
// the binary-search disambiguator with a simulated user produces a
// configuration equivalent to the target, within the logarithmic question
// bound.
func TestQuickDisambiguationFindsTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trials := 0
	for trials < 12 {
		orig := testgen.Config(rng, "RM", 4)
		snippetSrc := testgen.Config(rng, "SNIP", 1)
		snippet := extractSnippet(snippetSrc)
		nPos := len(orig.RouteMaps["RM"].Stanzas) + 1
		targetPos := rng.Intn(nPos)
		target := figureWithName(t, orig, "RM", snippet, "SNIP", targetPos)
		user := NewSimUserRouteMap(target, "RM")
		res, err := InsertRouteMapStanza(orig, "RM", snippet, "SNIP", user)
		if err != nil {
			t.Fatalf("trial %d: %v\norig:\n%s\nsnippet:\n%s", trials, err, orig.Print(), snippet.Print())
		}
		k := len(res.Overlaps)
		bound := int(math.Ceil(math.Log2(float64(k + 1))))
		if len(res.Questions) > bound {
			t.Errorf("trial %d: %d questions for %d overlaps (bound %d)", trials, len(res.Questions), k, bound)
		}
		mustEquivalent(t, res.Config, target, "RM")
		trials++
	}
}

// TestQuickLinearAgreesWithBinary: both strategies land on equivalent
// configurations; linear asks at least as many questions.
func TestQuickLinearAgreesWithBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		orig := testgen.Config(rng, "RM", 4)
		snippet := extractSnippet(testgen.Config(rng, "SNIP", 1))
		targetPos := rng.Intn(len(orig.RouteMaps["RM"].Stanzas) + 1)
		target := figureWithName(t, orig, "RM", snippet, "SNIP", targetPos)

		binUser := NewSimUserRouteMap(target, "RM")
		binRes, err := InsertRouteMapStanza(orig, "RM", snippet, "SNIP", binUser)
		if err != nil {
			t.Fatal(err)
		}
		linUser := NewSimUserRouteMap(target, "RM")
		linRes, err := InsertRouteMapStanzaLinear(orig, "RM", snippet, "SNIP", linUser)
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, binRes.Config, linRes.Config, "RM")
		if k := len(binRes.Overlaps); k > 0 {
			if len(binRes.Questions) > k || len(linRes.Questions) > k {
				t.Errorf("trial %d: question counts bin=%d lin=%d overlaps=%d",
					trial, len(binRes.Questions), len(linRes.Questions), k)
			}
		}
	}
}

func TestTopBottomPrototype(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	// Target = top.
	target := figure2(t, 0)
	res, err := InsertRouteMapStanzaTopBottom(orig, "ISP_OUT", snippet, "SET_METRIC", NewSimUserRouteMap(target, "ISP_OUT"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 0 || len(res.Questions) != 1 {
		t.Errorf("top-bottom: pos=%d questions=%d", res.Position, len(res.Questions))
	}
	mustEquivalent(t, res.Config, target, "ISP_OUT")
	// Target = bottom.
	target = figure2(t, 3)
	res, err = InsertRouteMapStanzaTopBottom(orig, "ISP_OUT", snippet, "SET_METRIC", NewSimUserRouteMap(target, "ISP_OUT"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Position != 3 {
		t.Errorf("top-bottom bottom: pos=%d", res.Position)
	}
	mustEquivalent(t, res.Config, target, "ISP_OUT")
}

func TestTopBottomEquivalentCandidatesSkipQuestion(t *testing.T) {
	orig := ios.MustParse(`ip prefix-list PL seq 10 permit 10.0.0.0/8
route-map RM deny 10
 match ip address prefix-list PL
`)
	snippet := ios.MustParse(`ip prefix-list P seq 10 permit 20.0.0.0/8
route-map NEW permit 10
 match ip address prefix-list P
`)
	res, err := InsertRouteMapStanzaTopBottom(orig, "RM", snippet, "NEW",
		FuncRouteOracle(func(RouteQuestion) (bool, error) {
			t.Fatal("equivalent candidates should not need a question")
			return false, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Questions) != 0 {
		t.Errorf("questions = %d", len(res.Questions))
	}
}

func TestInsertErrors(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	snippet := ios.MustParse(paperSnippet)
	if _, err := InsertRouteMapStanza(orig, "NOPE", snippet, "SET_METRIC", nil); err == nil {
		t.Error("missing target map should fail")
	}
	if _, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "NOPE", nil); err == nil {
		t.Error("missing snippet map should fail")
	}
	two := ios.MustParse(paperSnippet + "route-map SET_METRIC permit 20\n")
	if _, err := InsertRouteMapStanza(orig, "ISP_OUT", two, "SET_METRIC", nil); err == nil {
		t.Error("multi-stanza snippet should fail")
	}
}

// extractSnippet converts a testgen config (route-map "SNIP" with 1 stanza)
// into a self-contained snippet: keep only the lists the stanza references.
func extractSnippet(cfg *ios.Config) *ios.Config {
	out := ios.NewConfig()
	rm := cfg.RouteMaps["SNIP"]
	st := rm.Stanzas[0]
	for _, m := range st.Matches {
		switch m := m.(type) {
		case ios.MatchASPath:
			if _, done := out.ASPathLists[m.List]; !done {
				out.AddASPathList(m.List, cfg.ASPathLists[m.List].Entries...)
			}
		case ios.MatchPrefixList:
			if _, done := out.PrefixLists[m.List]; !done {
				out.AddPrefixList(m.List, cfg.PrefixLists[m.List].Entries...)
			}
		case ios.MatchCommunity:
			if _, done := out.CommunityLists[m.List]; !done {
				src := cfg.CommunityLists[m.List]
				out.AddCommunityList(m.List, src.Expanded, src.Entries...)
			}
		}
	}
	newRM := out.AddRouteMap("SNIP")
	newRM.Stanzas = append(newRM.Stanzas, st.Clone())
	return out
}

// figureWithName is figureWith for arbitrary map names.
func figureWithName(t *testing.T, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, pos int) *ios.Config {
	t.Helper()
	prep, err := prepare(orig, mapName, snippet, snippetMap)
	if err != nil {
		t.Fatal(err)
	}
	prep.rm.InsertStanza(pos, prep.stanza)
	return prep.work
}
