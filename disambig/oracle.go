package disambig

import (
	"fmt"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/policy"
)

// SimUser is the simulated operator: it holds the *target* configuration —
// the semantics the user actually intends, M′ in §4 — and answers every
// differential question by evaluating the target on the shown input. It
// stands in for the interactive operators the paper's prototype queries.
type SimUser struct {
	Target  *ios.Config
	MapName string
	ACLName string
	// Asked counts questions answered (the paper's "#Disambiguation").
	Asked int
}

// NewSimUserRouteMap builds a simulated user whose intent is the given
// route-map semantics.
func NewSimUserRouteMap(target *ios.Config, mapName string) *SimUser {
	return &SimUser{Target: target, MapName: mapName}
}

// NewSimUserACL builds a simulated user whose intent is the given ACL
// semantics.
func NewSimUserACL(target *ios.Config, aclName string) *SimUser {
	return &SimUser{Target: target, ACLName: aclName}
}

// ChooseRoute implements RouteOracle by consulting the target semantics.
func (u *SimUser) ChooseRoute(q RouteQuestion) (bool, error) {
	u.Asked++
	ev := policy.NewEvaluator(u.Target)
	rm, ok := u.Target.RouteMaps[u.MapName]
	if !ok {
		return false, fmt.Errorf("disambig: simulated user has no route-map %q", u.MapName)
	}
	want, err := ev.EvalRouteMap(rm, q.Input)
	if err != nil {
		return false, err
	}
	switch {
	case analysis.VerdictsEqual(want, q.NewVerdict):
		return true, nil
	case analysis.VerdictsEqual(want, q.OldVerdict):
		return false, nil
	default:
		return false, fmt.Errorf("disambig: simulated user's intent matches neither option for route %s", q.Input.Network)
	}
}

// ChooseACL implements ACLOracle by consulting the target semantics.
func (u *SimUser) ChooseACL(q ACLQuestion) (bool, error) {
	u.Asked++
	acl, ok := u.Target.ACLs[u.ACLName]
	if !ok {
		return false, fmt.Errorf("disambig: simulated user has no ACL %q", u.ACLName)
	}
	want := policy.EvalACL(acl, q.Input).Permit
	switch want {
	case q.NewPermit:
		return true, nil
	case q.OldPermit:
		return false, nil
	}
	return false, fmt.Errorf("disambig: simulated user's intent matches neither option for packet %s", q.Input)
}

// FuncRouteOracle adapts a function to RouteOracle (CLI glue, tests).
type FuncRouteOracle func(q RouteQuestion) (bool, error)

// ChooseRoute implements RouteOracle.
func (f FuncRouteOracle) ChooseRoute(q RouteQuestion) (bool, error) { return f(q) }

// FuncACLOracle adapts a function to ACLOracle.
type FuncACLOracle func(q ACLQuestion) (bool, error)

// ChooseACL implements ACLOracle.
func (f FuncACLOracle) ChooseACL(q ACLQuestion) (bool, error) { return f(q) }

// ACLQuestion is the packet-filter analogue of RouteQuestion.
type ACLQuestion struct {
	Input packet.Packet
	// NewPermit is the action if the new entry handles Input; OldPermit is
	// the current ACL's action.
	NewPermit bool
	OldPermit bool
	// ProbedEntry is the index of the overlapping entry being resolved.
	ProbedEntry int
}

// String renders the question in OPTION 1 / OPTION 2 style.
func (q ACLQuestion) String() string {
	return fmt.Sprintf("Input packet: %s\n\nOPTION 1 (new entry applies): %s\nOPTION 2 (existing behavior): %s",
		q.Input, actionWord(q.NewPermit), actionWord(q.OldPermit))
}

func actionWord(permit bool) string {
	if permit {
		return "permit"
	}
	return "deny"
}

// ACLOracle answers ACL disambiguation questions.
type ACLOracle interface {
	ChooseACL(q ACLQuestion) (preferNew bool, err error)
}
