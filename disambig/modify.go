package disambig

import (
	"fmt"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/symbolic"
)

// This file implements the second §7 future-work item: deleting and
// modifying existing rules. Deletions and modifications are not placement
// problems — the location is given — but they carry the same regression risk
// the paper motivates: removing a stanza re-routes every input it used to
// capture to whichever later stanza matches next. Instead of questions, the
// tool computes the *semantic impact*: a differential comparison between the
// configuration before and after the edit, with concrete example routes, so
// the user confirms the behavioural delta rather than guessing it.

// Impact is one behavioural change caused by an edit.
type Impact struct {
	// Example is a concrete differential input with both verdicts.
	Example analysis.Diff
}

// EditResult reports a completed deletion or modification.
type EditResult struct {
	Config *ios.Config
	// Impacts are confirmed behavioural changes (up to the requested bound);
	// empty means the edit is observationally invisible (dead rule).
	Impacts []Impact
}

// DeleteRouteMapStanza removes the stanza at index (0-based) from the named
// route map and reports up to maxImpacts behavioural changes.
func DeleteRouteMapStanza(orig *ios.Config, mapName string, index, maxImpacts int) (*EditResult, error) {
	return DeleteRouteMapStanzaCached(nil, orig, mapName, index, maxImpacts)
}

// DeleteRouteMapStanzaCached is DeleteRouteMapStanza drawing its symbolic
// universe from cache (which may be nil).
func DeleteRouteMapStanzaCached(cache *symbolic.SpaceCache, orig *ios.Config, mapName string, index, maxImpacts int) (*EditResult, error) {
	rm, ok := orig.RouteMaps[mapName]
	if !ok {
		return nil, fmt.Errorf("disambig: route-map %q not in configuration", mapName)
	}
	if index < 0 || index >= len(rm.Stanzas) {
		return nil, fmt.Errorf("disambig: stanza index %d out of range [0,%d)", index, len(rm.Stanzas))
	}
	work := orig.Clone()
	wrm := work.RouteMaps[mapName]
	wrm.Stanzas = append(wrm.Stanzas[:index], wrm.Stanzas[index+1:]...)
	wrm.Renumber()
	return editImpact(cache, orig, work, mapName, maxImpacts)
}

// ReplaceRouteMapStanza swaps the stanza at index for a new one (which must
// reference only lists already defined in the configuration) and reports the
// behavioural changes.
func ReplaceRouteMapStanza(orig *ios.Config, mapName string, index int, stanza *ios.Stanza, maxImpacts int) (*EditResult, error) {
	return ReplaceRouteMapStanzaCached(nil, orig, mapName, index, stanza, maxImpacts)
}

// ReplaceRouteMapStanzaCached is ReplaceRouteMapStanza drawing its symbolic
// universe from cache (which may be nil).
func ReplaceRouteMapStanzaCached(cache *symbolic.SpaceCache, orig *ios.Config, mapName string, index int, stanza *ios.Stanza, maxImpacts int) (*EditResult, error) {
	rm, ok := orig.RouteMaps[mapName]
	if !ok {
		return nil, fmt.Errorf("disambig: route-map %q not in configuration", mapName)
	}
	if index < 0 || index >= len(rm.Stanzas) {
		return nil, fmt.Errorf("disambig: stanza index %d out of range [0,%d)", index, len(rm.Stanzas))
	}
	work := orig.Clone()
	st := stanza.Clone()
	st.Seq = work.RouteMaps[mapName].Stanzas[index].Seq
	work.RouteMaps[mapName].Stanzas[index] = st
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("disambig: replacement stanza: %w", err)
	}
	return editImpact(cache, orig, work, mapName, maxImpacts)
}

func editImpact(cache *symbolic.SpaceCache, before, after *ios.Config, mapName string, maxImpacts int) (*EditResult, error) {
	if maxImpacts <= 0 {
		maxImpacts = 4
	}
	space, err := cache.Acquire(before, after)
	if err != nil {
		return nil, err
	}
	defer cache.Release(space)
	diffs, err := analysis.CompareRouteMaps(space,
		before, before.RouteMaps[mapName],
		after, after.RouteMaps[mapName], maxImpacts)
	if err != nil {
		return nil, err
	}
	res := &EditResult{Config: after}
	for _, d := range diffs {
		res.Impacts = append(res.Impacts, Impact{Example: d})
	}
	return res, nil
}

// DeleteACLEntry removes the entry at index from the named ACL and reports
// up to maxImpacts behavioural changes (concrete packets whose fate flips).
func DeleteACLEntry(orig *ios.Config, aclName string, index, maxImpacts int) (*ACLEditResult, error) {
	acl, ok := orig.ACLs[aclName]
	if !ok {
		return nil, fmt.Errorf("disambig: ACL %q not in configuration", aclName)
	}
	if index < 0 || index >= len(acl.Entries) {
		return nil, fmt.Errorf("disambig: entry index %d out of range [0,%d)", index, len(acl.Entries))
	}
	if maxImpacts <= 0 {
		maxImpacts = 4
	}
	work := orig.Clone()
	wacl := work.ACLs[aclName]
	wacl.Entries = append(wacl.Entries[:index], wacl.Entries[index+1:]...)
	wacl.Renumber()

	space := symbolic.NewACLSpace()
	changed := space.Pool.Xor(space.PermitSet(acl), space.PermitSet(wacl))
	res := &ACLEditResult{Config: work}
	space.Pool.AllSat(changed, func(cube map[int]bool) bool {
		res.Changed = append(res.Changed, ACLImpact{Packet: space.Decode(cube).String()})
		return len(res.Changed) < maxImpacts
	})
	return res, nil
}

// ACLEditResult reports an ACL edit's behavioural delta.
type ACLEditResult struct {
	Config *ios.Config
	// Changed holds example packets whose permit/deny fate flipped; empty
	// means the removed entry was dead (shadowed or redundant).
	Changed []ACLImpact
}

// ACLImpact is one flipped packet.
type ACLImpact struct {
	Packet string
}
