package disambig

import (
	"testing"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
)

func TestDeleteRouteMapStanzaImpact(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	// Deleting the as-path deny re-routes ASN-32 routes: most fall to the
	// implicit deny (same action), but an ASN-32 route with local-pref 300
	// flips to permitted by stanza 30.
	res, err := DeleteRouteMapStanza(orig, "ISP_OUT", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Config.RouteMaps["ISP_OUT"].Stanzas) != 2 {
		t.Fatal("stanza not deleted")
	}
	if len(res.Impacts) == 0 {
		t.Fatal("deleting a live deny must report impacts")
	}
	evBefore := policy.NewEvaluator(orig)
	evAfter := policy.NewEvaluator(res.Config)
	for _, imp := range res.Impacts {
		vb, err := evBefore.EvalRouteMap(orig.RouteMaps["ISP_OUT"], imp.Example.Input)
		if err != nil {
			t.Fatal(err)
		}
		va, err := evAfter.EvalRouteMap(res.Config.RouteMaps["ISP_OUT"], imp.Example.Input)
		if err != nil {
			t.Fatal(err)
		}
		if analysis.VerdictsEqual(vb, va) {
			t.Errorf("reported impact is not a behavioural change: %s", imp.Example.Input.Network)
		}
	}
	// Original untouched.
	if len(orig.RouteMaps["ISP_OUT"].Stanzas) != 3 {
		t.Error("original mutated")
	}
}

func TestDeleteDeadStanzaNoImpact(t *testing.T) {
	// Stanza 2 is fully shadowed by stanza 1 (identical match, same
	// effective deny) — deleting it is invisible.
	cfg := ios.MustParse(`ip prefix-list P seq 10 permit 10.0.0.0/8 le 32
route-map RM deny 10
 match ip address prefix-list P
route-map RM deny 20
 match ip address prefix-list P
route-map RM permit 30
`)
	res, err := DeleteRouteMapStanza(cfg, "RM", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Impacts) != 0 {
		t.Errorf("deleting a shadowed stanza reported impacts: %+v", res.Impacts)
	}
}

func TestReplaceRouteMapStanza(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	// Replace the lp-300 permit with one that also sets metric 77.
	newStanza := orig.RouteMaps["ISP_OUT"].Stanzas[2].Clone()
	newStanza.Sets = []ios.SetClause{ios.SetMetric{Value: 77}}
	res, err := ReplaceRouteMapStanza(orig, "ISP_OUT", 2, newStanza, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Impacts) == 0 {
		t.Fatal("metric change must be observable")
	}
	found := false
	for _, imp := range res.Impacts {
		if imp.Example.VerdictB.Permit && imp.Example.VerdictB.Output.MED == 77 {
			found = true
		}
	}
	if !found {
		t.Error("no impact shows the new metric")
	}
}

func TestReplaceValidatesReferences(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	bad := &ios.Stanza{Permit: true, Matches: []ios.Match{ios.MatchASPath{List: "GHOST"}}}
	if _, err := ReplaceRouteMapStanza(orig, "ISP_OUT", 0, bad, 1); err == nil {
		t.Fatal("dangling reference should fail")
	}
}

func TestEditErrors(t *testing.T) {
	orig := ios.MustParse(paperISPOut)
	if _, err := DeleteRouteMapStanza(orig, "NOPE", 0, 1); err == nil {
		t.Error("missing map should fail")
	}
	if _, err := DeleteRouteMapStanza(orig, "ISP_OUT", 9, 1); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := ReplaceRouteMapStanza(orig, "ISP_OUT", -1, &ios.Stanza{}, 1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestDeleteACLEntryImpact(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 deny tcp any any eq 22
 permit ip any any
`)
	res, err := DeleteACLEntry(cfg, "A", 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) == 0 {
		t.Fatal("deleting the ssh deny must flip packets")
	}
	if len(cfg.ACLs["A"].Entries) != 2 {
		t.Error("original mutated")
	}
	if len(res.Config.ACLs["A"].Entries) != 1 {
		t.Error("entry not deleted")
	}
}

func TestDeleteRedundantACLEntryNoImpact(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 permit tcp any any eq 80
 permit tcp any any eq 80
 deny ip any any
`)
	res, err := DeleteACLEntry(cfg, "A", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Errorf("redundant entry deletion flipped packets: %+v", res.Changed)
	}
	if _, err := DeleteACLEntry(cfg, "A", 7, 1); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := DeleteACLEntry(cfg, "NOPE", 0, 1); err == nil {
		t.Error("missing ACL should fail")
	}
}
