package disambig

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"

	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/symbolic"
	"github.com/clarifynet/clarify/workload"
)

// These tests pin the SpaceCache's contract: a disambiguation run drawing
// its symbolic universe from the cache must be bit-for-bit indistinguishable
// from one building the universe fresh — same insertion position, same
// overlaps, same questions, same witnesses.

// TestCachedWalkthroughIdentical replays the §2.1 walkthrough cached and
// uncached and requires identical outcomes, twice over so the second cached
// pass exercises an actual hit.
func TestCachedWalkthroughIdentical(t *testing.T) {
	cache := symbolic.NewSpaceCache()
	for pass := 0; pass < 2; pass++ {
		for targetPos := 0; targetPos <= 3; targetPos++ {
			orig := ios.MustParse(paperISPOut)
			snippet := ios.MustParse(paperSnippet)
			target := figure2(t, targetPos)

			plain, err := InsertRouteMapStanza(orig, "ISP_OUT", snippet, "SET_METRIC", NewSimUserRouteMap(target, "ISP_OUT"))
			if err != nil {
				t.Fatal(err)
			}
			cached, err := InsertRouteMapStanzaCached(cache, orig, "ISP_OUT", snippet, "SET_METRIC", NewSimUserRouteMap(target, "ISP_OUT"))
			if err != nil {
				t.Fatal(err)
			}
			if plain.Position != cached.Position {
				t.Errorf("pass %d target %d: position %d (plain) vs %d (cached)", pass, targetPos, plain.Position, cached.Position)
			}
			if !reflect.DeepEqual(plain.Overlaps, cached.Overlaps) {
				t.Errorf("pass %d target %d: overlaps %v vs %v", pass, targetPos, plain.Overlaps, cached.Overlaps)
			}
			if !reflect.DeepEqual(plain.Questions, cached.Questions) {
				t.Errorf("pass %d target %d: questions (with witnesses) diverge:\n%v\nvs\n%v", pass, targetPos, plain.Questions, cached.Questions)
			}
			mustEquivalent(t, plain.Config, cached.Config, "ISP_OUT")
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("second pass produced no cache hits: %+v", st)
	}
}

// TestQuickCachedInsertionOverWorkload is the property-style sweep: random
// generated maps and the cloud-corpus archetypes, inserted into with a
// shared cache, must match the uncached runs exactly.
func TestQuickCachedInsertionOverWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cache := symbolic.NewSpaceCache()

	var trials []struct {
		orig    *ios.Config
		mapName string
	}
	for i := 0; i < 6; i++ {
		trials = append(trials, struct {
			orig    *ios.Config
			mapName string
		}{testgen.Config(rng, "RM", 3+rng.Intn(3)), "RM"})
	}
	corpus := workload.Cloud(7, 0, 12)
	for i, cfg := range corpus.RouteMapConfigs {
		for name := range cfg.RouteMaps {
			trials = append(trials, struct {
				orig    *ios.Config
				mapName string
			}{cfg, name})
		}
		if i >= 5 {
			break
		}
	}

	for i, tr := range trials {
		// extractSnippet keeps only the directly-matched lists; regenerate
		// when the stanza references something else (e.g. a next-hop list).
		snippet := extractSnippet(testgen.Config(rng, "SNIP", 1))
		for snippet.Validate() != nil {
			snippet = extractSnippet(testgen.Config(rng, "SNIP", 1))
		}
		// A stateless always-bottom oracle keeps the two runs comparable
		// question-for-question.
		oracle := FuncRouteOracle(func(q RouteQuestion) (bool, error) { return false, nil })
		plain, err := InsertRouteMapStanza(tr.orig, tr.mapName, snippet, "SNIP", oracle)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		cached, err := InsertRouteMapStanzaCached(cache, tr.orig, tr.mapName, snippet, "SNIP", oracle)
		if err != nil {
			t.Fatalf("trial %d (cached): %v", i, err)
		}
		if plain.Position != cached.Position || !reflect.DeepEqual(plain.Overlaps, cached.Overlaps) {
			t.Errorf("trial %d: pos/overlaps %d %v (plain) vs %d %v (cached)",
				i, plain.Position, plain.Overlaps, cached.Position, cached.Overlaps)
		}
		if !reflect.DeepEqual(plain.Questions, cached.Questions) {
			t.Errorf("trial %d: questions diverge", i)
		}
		mustEquivalent(t, plain.Config, cached.Config, tr.mapName)
	}
}

// TestCachedListInsertionIdentical covers the ancillary-list paths.
func TestCachedListInsertionIdentical(t *testing.T) {
	cache := symbolic.NewSpaceCache()
	base := `ip prefix-list PL seq 10 permit 10.0.0.0/8 le 16
ip prefix-list PL seq 20 deny 10.1.0.0/16 le 24
ip community-list expanded CL permit _65000:1_
ip community-list expanded CL deny _65000:2_
ip as-path access-list AP permit _100$
ip as-path access-list AP deny _200$
`
	oracle := FuncListOracle(func(q ListQuestion) (bool, error) { return true, nil })

	for pass := 0; pass < 2; pass++ {
		orig := ios.MustParse(base)
		entry := ios.PrefixListEntry{Permit: false, Prefix: mustPfx(t, "10.0.0.0/8"), Le: 24}
		plain, err := InsertPrefixListEntry(orig, "PL", entry, oracle)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := InsertPrefixListEntryCached(cache, orig, "PL", entry, oracle)
		if err != nil {
			t.Fatal(err)
		}
		compareListResults(t, "prefix", plain, cached)

		cEntry := ios.CommunityListEntry{Permit: false, Values: []string{"_65000:1_"}}
		plain, err = InsertCommunityListEntry(orig, "CL", cEntry, oracle)
		if err != nil {
			t.Fatal(err)
		}
		cached, err = InsertCommunityListEntryCached(cache, orig, "CL", cEntry, oracle)
		if err != nil {
			t.Fatal(err)
		}
		compareListResults(t, "community", plain, cached)

		aEntry := ios.ASPathEntry{Permit: false, Regex: "_100$"}
		plain, err = InsertASPathEntry(orig, "AP", aEntry, oracle)
		if err != nil {
			t.Fatal(err)
		}
		cached, err = InsertASPathEntryCached(cache, orig, "AP", aEntry, oracle)
		if err != nil {
			t.Fatal(err)
		}
		compareListResults(t, "as-path", plain, cached)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("no cache hits on second pass: %+v", st)
	}
}

func compareListResults(t *testing.T, label string, plain, cached *ListResult) {
	t.Helper()
	if plain.Position != cached.Position {
		t.Errorf("%s: position %d (plain) vs %d (cached)", label, plain.Position, cached.Position)
	}
	if !reflect.DeepEqual(plain.Overlaps, cached.Overlaps) {
		t.Errorf("%s: overlaps %v vs %v", label, plain.Overlaps, cached.Overlaps)
	}
	if !reflect.DeepEqual(plain.Questions, cached.Questions) {
		t.Errorf("%s: questions diverge", label)
	}
}

// TestCachedEditImpactIdentical covers the modify path (CompareRouteMaps
// under the hood) over the workload archetypes.
func TestCachedEditImpactIdentical(t *testing.T) {
	cache := symbolic.NewSpaceCache()
	corpus := workload.Cloud(11, 0, 10)
	checked := 0
	for _, cfg := range corpus.RouteMapConfigs {
		for name, rm := range cfg.RouteMaps {
			if len(rm.Stanzas) < 2 {
				continue
			}
			plain, err := DeleteRouteMapStanza(cfg, name, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			cached, err := DeleteRouteMapStanzaCached(cache, cfg, name, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(plain.Impacts) != len(cached.Impacts) {
				t.Errorf("%s: %d impacts (plain) vs %d (cached)", name, len(plain.Impacts), len(cached.Impacts))
			}
			if !reflect.DeepEqual(plain.Impacts, cached.Impacts) {
				t.Errorf("%s: impact examples diverge", name)
			}
			mustEquivalent(t, plain.Config, cached.Config, name)
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("workload produced no multi-stanza maps to check")
	}
}

func mustPfx(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
