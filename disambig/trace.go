package disambig

import (
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/symbolic"
)

// InsertRouteMapStanzaStrategyTraced is InsertRouteMapStanzaStrategyCached
// recording the disambiguation workload under sp (which may be nil): BDD
// counters for the overlap analysis, one "question-wait" child span per
// oracle round trip, and an "insert" child span for the final placement.
func InsertRouteMapStanzaStrategyTraced(strategy Strategy, cache *symbolic.SpaceCache, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle, sp *obs.Span) (*RouteResult, error) {
	switch strategy {
	case StrategyLinear:
		return insertWithSearch(cache, sp, orig, mapName, snippet, snippetMap, oracle, StrategyLinear, linearSearch)
	case StrategyTopBottom:
		return insertTopBottom(cache, sp, orig, mapName, snippet, snippetMap, oracle)
	default:
		return insertWithSearch(cache, sp, orig, mapName, snippet, snippetMap, oracle, StrategyBinary, binarySearch)
	}
}

// InsertACLEntryTraced is InsertACLEntry recording the disambiguation
// workload under sp (which may be nil).
func InsertACLEntryTraced(orig *ios.Config, aclName string, snippet *ios.Config, snippetACL string, oracle ACLOracle, sp *obs.Span) (*ACLResult, error) {
	return insertACLEntry(orig, aclName, snippet, snippetACL, oracle, sp)
}

// tracedRouteOracle times each oracle round trip as a "question-wait" child
// span — for the daemon's async oracle this is the operator's think time.
type tracedRouteOracle struct {
	oracle RouteOracle
	sp     *obs.Span
}

func (o *tracedRouteOracle) ChooseRoute(q RouteQuestion) (bool, error) {
	qsp := o.sp.Child("question-wait")
	qsp.SetInt("probed-stanza", int64(q.ProbedStanza))
	preferNew, err := o.oracle.ChooseRoute(q)
	qsp.SetBool("prefer-new", preferNew)
	qsp.End()
	return preferNew, err
}

// tracedACLOracle is tracedRouteOracle for ACL questions.
type tracedACLOracle struct {
	oracle ACLOracle
	sp     *obs.Span
}

func (o *tracedACLOracle) ChooseACL(q ACLQuestion) (bool, error) {
	qsp := o.sp.Child("question-wait")
	qsp.SetInt("probed-entry", int64(q.ProbedEntry))
	preferNew, err := o.oracle.ChooseACL(q)
	qsp.SetBool("prefer-new", preferNew)
	qsp.End()
	return preferNew, err
}
