package disambig

import (
	"fmt"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/obs"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/symbolic"
)

// Strategy selects a disambiguation algorithm; used by the ablation benches
// comparing question counts.
type Strategy int

// Disambiguation strategies.
const (
	// StrategyBinary is the §4 binary search (the contribution).
	StrategyBinary Strategy = iota
	// StrategyLinear probes every distinguishing overlap top-down until the
	// user picks the new stanza — the obvious one-question-per-overlap
	// baseline.
	StrategyLinear
	// StrategyTopBottom reproduces the paper's prototype: only the top and
	// bottom placements are considered, resolved with at most one question
	// (§2.2: "our disambiguator prototype only supports stanza insertions at
	// the top or bottom").
	StrategyTopBottom
)

func (s Strategy) String() string {
	switch s {
	case StrategyBinary:
		return "binary"
	case StrategyLinear:
		return "linear"
	case StrategyTopBottom:
		return "top-bottom"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// InsertRouteMapStanzaLinear is InsertRouteMapStanza with a linear scan in
// place of binary search: it asks one question per distinguishing overlap,
// from the top, placing the new stanza immediately before the first overlap
// the user assigns to it.
func InsertRouteMapStanzaLinear(orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	return insertWithSearch(nil, nil, orig, mapName, snippet, snippetMap, oracle, StrategyLinear, linearSearch)
}

// InsertRouteMapStanzaStrategy dispatches on strategy.
func InsertRouteMapStanzaStrategy(strategy Strategy, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	return InsertRouteMapStanzaStrategyCached(strategy, nil, orig, mapName, snippet, snippetMap, oracle)
}

// InsertRouteMapStanzaStrategyCached dispatches on strategy, drawing the
// symbolic universe from cache (which may be nil).
func InsertRouteMapStanzaStrategyCached(strategy Strategy, cache *symbolic.SpaceCache, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	return InsertRouteMapStanzaStrategyTraced(strategy, cache, orig, mapName, snippet, snippetMap, oracle, nil)
}

func linearSearch(probes []probeQ, oracle RouteOracle, meter *ambiguity.Meter, record func(RouteQuestion)) (int, error) {
	for gap, p := range probes {
		preferNew, err := oracle.ChooseRoute(p.example)
		if err != nil {
			return 0, err
		}
		record(p.example)
		if preferNew {
			// "yes" at gap pins the stanza below every remaining probe too
			// (monotone placement), collapsing the undecided range.
			meter.Question(gap, len(probes), gap, gap, true)
			return gap, nil
		}
		meter.Question(gap, len(probes), gap+1, len(probes), false)
	}
	return len(probes), nil
}

func binarySearch(probes []probeQ, oracle RouteOracle, meter *ambiguity.Meter, record func(RouteQuestion)) (int, error) {
	lo, hi := 0, len(probes)
	for lo < hi {
		mid := (lo + hi) / 2
		preferNew, err := oracle.ChooseRoute(probes[mid].example)
		if err != nil {
			return 0, err
		}
		record(probes[mid].example)
		if preferNew {
			meter.Question(lo, hi, lo, mid, true)
			hi = mid
		} else {
			meter.Question(lo, hi, mid+1, hi, false)
			lo = mid + 1
		}
	}
	return lo, nil
}

// InsertRouteMapStanzaTopBottom reproduces the paper's prototype: build the
// top-inserted and bottom-inserted candidates, compare them, and ask at most
// one question. When the candidates differ on inputs the user assigns to
// *neither* extreme consistently, the restriction simply cannot express the
// intent — exactly the limitation §7 lists as future work.
func InsertRouteMapStanzaTopBottom(orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	return insertTopBottom(nil, nil, orig, mapName, snippet, snippetMap, oracle)
}

func insertTopBottom(cache *symbolic.SpaceCache, sp *obs.Span, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	if sp != nil {
		oracle = &tracedRouteOracle{oracle: oracle, sp: sp}
	}
	prep, err := prepare(orig, mapName, snippet, snippetMap)
	if err != nil {
		return nil, err
	}
	work, rm, newStanza := prep.work, prep.rm, prep.stanza

	// When tracing is on, measure the same distinguishing regions the gap
	// searches use, so the ledger compares strategies on equal terms.
	var meter *ambiguity.Meter
	var probes []probeQ
	if sp != nil {
		probes, meter, err = collectProbesMetered(cache, sp, work, rm, newStanza, StrategyTopBottom)
		if err != nil {
			return nil, err
		}
	}

	top := work.Clone()
	top.RouteMaps[mapName].InsertStanza(0, newStanza.Clone())
	bottom := work.Clone()
	bottom.RouteMaps[mapName].InsertStanza(len(rm.Stanzas), newStanza.Clone())

	space, err := cache.Acquire(top, bottom)
	if err != nil {
		return nil, err
	}
	defer cache.Release(space)
	defer space.ObserveInto(sp, space.Pool.Counters())
	diffs, err := analysis.CompareRouteMaps(space, top, top.RouteMaps[mapName], bottom, bottom.RouteMaps[mapName], 1)
	if err != nil {
		return nil, err
	}
	result := &RouteResult{Renames: prep.renames}
	if len(diffs) == 0 {
		// Equivalent: place at the bottom. The equivalence proof resolves
		// the whole candidate space without a question.
		result.Ambiguity = meter.Finish(0, 0)
		ambiguity.Annotate(sp, result.Ambiguity)
		result.Config = bottom
		result.Position = len(rm.Stanzas)
		return result, nil
	}
	d := diffs[0]
	q := RouteQuestion{
		Input:      d.Input,
		NewVerdict: d.VerdictA, // top placement: new stanza wins
		OldVerdict: d.VerdictB, // bottom placement: existing stanzas win
	}
	preferNew, err := oracle.ChooseRoute(q)
	if err != nil {
		return nil, err
	}
	result.Questions = append(result.Questions, q)
	if meter != nil {
		// The witness decides placement relative to its own first-match
		// stanza (and, by monotonicity, every probe beyond it in the chosen
		// direction). Probes on the unasked side are *forced* to an extreme
		// by the prototype's top-or-bottom restriction, not resolved — they
		// stay on the ledger as residual ambiguity, the measured signature
		// of the §7 limitation.
		ev := policy.NewEvaluator(work)
		v, everr := ev.EvalRouteMap(rm, d.Input)
		if everr != nil {
			return nil, everr
		}
		below, atOrBelow := 0, 0
		for _, p := range probes {
			if p.stanza < v.Index {
				below++
			}
			if p.stanza <= v.Index {
				atOrBelow++
			}
		}
		lo2, hi2 := 0, below // top placement: probes above the witness stay undecided
		if !preferNew {
			lo2, hi2 = atOrBelow, len(probes) // bottom: probes below it do
		}
		meter.Question(0, len(probes), lo2, hi2, preferNew)
		result.Ambiguity = meter.Finish(lo2, hi2)
		ambiguity.Annotate(sp, result.Ambiguity)
	}
	if preferNew {
		result.Config = top
		result.Position = 0
	} else {
		result.Config = bottom
		result.Position = len(rm.Stanzas)
	}
	return result, nil
}

// ---------- shared preparation ----------

type probeQ struct {
	stanza  int
	example RouteQuestion
	// region is the distinguishing candidate region this probe resolves —
	// the ambiguity meter's unit of measurement. Only valid while the
	// symbolic space it was built in is held.
	region bdd.Node
}

type prepared struct {
	work    *ios.Config
	rm      *ios.RouteMap
	stanza  *ios.Stanza
	renames map[string]string
}

// prepare clones, renames and merges the snippet — the common preamble of
// every insertion strategy.
func prepare(orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string) (*prepared, error) {
	if _, ok := orig.RouteMaps[mapName]; !ok {
		return nil, fmt.Errorf("disambig: route-map %q not in configuration", mapName)
	}
	snipRM, ok := snippet.RouteMaps[snippetMap]
	if !ok {
		return nil, fmt.Errorf("disambig: snippet lacks route-map %q", snippetMap)
	}
	if len(snipRM.Stanzas) != 1 {
		return nil, fmt.Errorf("disambig: snippet has %d stanzas, want exactly 1", len(snipRM.Stanzas))
	}
	work := orig.Clone()
	snip := snippet.Clone()
	renames := map[string]string{}
	taken := map[string]bool{}
	for _, name := range snip.ListNames() {
		fresh := nextListName(work, taken)
		snip.RenameList(name, fresh)
		renames[name] = fresh
		taken[fresh] = true
	}
	stanza := snip.RouteMaps[snippetMap].Stanzas[0].Clone()
	snip.RemoveRouteMap(snippetMap)
	if err := work.Merge(snip); err != nil {
		return nil, fmt.Errorf("disambig: merging snippet lists: %w", err)
	}
	return &prepared{work: work, rm: work.RouteMaps[mapName], stanza: stanza, renames: renames}, nil
}

// insertWithSearch is the generic flow parameterized by gap-search strategy.
func insertWithSearch(cache *symbolic.SpaceCache, sp *obs.Span, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle,
	strategy Strategy, search func([]probeQ, RouteOracle, *ambiguity.Meter, func(RouteQuestion)) (int, error)) (*RouteResult, error) {
	if sp != nil {
		oracle = &tracedRouteOracle{oracle: oracle, sp: sp}
	}
	prep, err := prepare(orig, mapName, snippet, snippetMap)
	if err != nil {
		return nil, err
	}
	work, rm, newStanza := prep.work, prep.rm, prep.stanza
	probes, meter, err := collectProbesMetered(cache, sp, work, rm, newStanza, strategy)
	if err != nil {
		return nil, err
	}
	result := &RouteResult{Renames: prep.renames}
	for _, p := range probes {
		result.Overlaps = append(result.Overlaps, p.stanza)
	}
	gap, err := search(probes, oracle, meter, func(q RouteQuestion) {
		result.Questions = append(result.Questions, q)
	})
	if err != nil {
		return nil, err
	}
	// Both searches run the undecided range dry, so the residual is the
	// empty range.
	result.Ambiguity = meter.Finish(gap, gap)
	ambiguity.Annotate(sp, result.Ambiguity)
	pos := 0
	if gap > 0 {
		pos = probes[gap-1].stanza + 1
	}
	insSp := sp.Child("insert")
	rm.InsertStanza(pos, newStanza)
	if err := work.Validate(); err != nil {
		insSp.End()
		return nil, fmt.Errorf("disambig: post-insertion validation: %w", err)
	}
	insSp.SetInt("position", int64(pos))
	insSp.End()
	result.Config = work
	result.Position = pos
	return result, nil
}

// newStanzaWrapper wraps the detached new stanza in a throwaway config so
// the route-space construction collects its set-community literals into the
// atomic-predicate universe (the stanza is not part of any route-map yet).
func newStanzaWrapper(newStanza *ios.Stanza) *ios.Config {
	wrapper := ios.NewConfig()
	wrapper.AddRouteMap("__NEW__").Stanzas = []*ios.Stanza{newStanza}
	return wrapper
}

// collectProbesMetered acquires the symbolic space, collects the probes,
// and — when tracing is on — builds the ambiguity meter over their
// distinguishing regions before the space is released. The meter
// precomputes every interval measurement, so nothing touches the pool
// after release (the search may park on oracle questions for minutes).
func collectProbesMetered(cache *symbolic.SpaceCache, sp *obs.Span, work *ios.Config, rm *ios.RouteMap, newStanza *ios.Stanza, strategy Strategy) ([]probeQ, *ambiguity.Meter, error) {
	space, err := cache.Acquire(work, newStanzaWrapper(newStanza))
	if err != nil {
		return nil, nil, err
	}
	before := space.Pool.Counters()
	defer cache.Release(space)
	defer func() { space.ObserveInto(sp, before) }()
	probes, err := collectProbes(space, work, rm, newStanza)
	if err != nil {
		return nil, nil, err
	}
	var meter *ambiguity.Meter
	if sp != nil {
		regions := make([]bdd.Node, len(probes))
		for i, p := range probes {
			regions[i] = p.region
		}
		meter = ambiguity.NewMeter(space.Pool, "route-map", strategy.String(), regions)
	}
	return probes, meter, nil
}

// collectProbes finds the distinguishing overlaps with a confirmed
// differential example each, in the given symbolic space.
func collectProbes(space *symbolic.RouteSpace, work *ios.Config, rm *ios.RouteMap, newStanza *ios.Stanza) ([]probeQ, error) {
	regions, err := space.FirstMatch(work, rm)
	if err != nil {
		return nil, err
	}
	predNew, err := space.StanzaPred(work, newStanza)
	if err != nil {
		return nil, err
	}
	ev := policy.NewEvaluator(work)
	var probes []probeQ
	for i := range rm.Stanzas {
		shared := space.Pool.AndN(regions[i], predNew, space.Valid)
		outEq, err := space.OutputEqual(newStanza, rm.Stanzas[i])
		if err != nil {
			return nil, err
		}
		distinguishing := space.Pool.Diff(shared, outEq)
		q, found, err := confirmQuestion(space, ev, rm, newStanza, i, distinguishing)
		if err != nil {
			return nil, err
		}
		if found {
			probes = append(probes, probeQ{stanza: i, example: q, region: distinguishing})
		}
	}
	return probes, nil
}
