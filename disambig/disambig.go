// Package disambig implements the paper's core contribution: the
// disambiguator of Section 4. Given a verified configuration snippet and the
// existing route map or ACL it must be inserted into, the disambiguator
// locates the overlapping rules, binary-searches the candidate insertion
// gaps, and resolves each probe by showing the user a differential example —
// an input handled differently depending on placement — through an Oracle.
//
// The paper's formal model: a policy is a rule list S̄ with first-match
// semantics M(r) = argmin{ i | matches(r, S_i) }. Inserting S* must realize a
// new semantics M′ satisfying the three conditions of §4 (every input keeps
// its old handler or moves to S*; inputs moving to S* match S*; and movers
// are "later" than keepers among S*-matching inputs). Under those conditions
// a single insertion point realizes M′ and ⌈log₂(k+1)⌉ user questions locate
// it, where k is the number of overlapping rules.
//
// Two refinements over the paper's formalization, both behaviour-preserving:
// overlaps are computed against *first-match* regions (a rule shadowed on the
// whole S*-overlap is irrelevant to placement), and overlaps whose behaviour
// is observationally identical to S* on the shared region are skipped (the
// question would be unanswerable — both options identical).
package disambig

import (
	"fmt"

	"github.com/clarifynet/clarify/ambiguity"
	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/symbolic"
)

// maxProbes bounds concrete confirmation attempts per candidate region.
const maxProbes = 8

// RouteQuestion is one differential example shown to the user: the input
// route, the behaviour if the new stanza takes precedence (OPTION 1 in the
// paper's §2.2), and the current behaviour (OPTION 2).
type RouteQuestion struct {
	Input route.Route
	// NewVerdict is the behaviour when the new stanza handles Input.
	NewVerdict policy.RouteVerdict
	// OldVerdict is the existing route map's behaviour on Input.
	OldVerdict policy.RouteVerdict
	// ProbedStanza is the index (in the original map) of the overlapping
	// stanza whose priority relative to the new stanza is being resolved.
	ProbedStanza int
}

// String renders the question in the paper's OPTION 1 / OPTION 2 style.
func (q RouteQuestion) String() string {
	return fmt.Sprintf("Input route:\n%s\n\nOPTION 1 (new stanza applies):\n%s\nOPTION 2 (existing behavior):\n%s",
		q.Input, renderVerdict(q.NewVerdict), renderVerdict(q.OldVerdict))
}

func renderVerdict(v policy.RouteVerdict) string {
	if !v.Permit {
		return "ACTION: deny\n"
	}
	return "ACTION: permit\n" + v.Output.String() + "\n"
}

// RouteOracle answers route-map disambiguation questions. Implementations
// are the interactive CLI and the simulated user.
type RouteOracle interface {
	// ChooseRoute returns true when the user wants OPTION 1 (the new stanza
	// should handle the shown input).
	ChooseRoute(q RouteQuestion) (preferNew bool, err error)
}

// RouteResult reports a completed route-map insertion.
type RouteResult struct {
	// Config is the updated configuration (the input is never mutated).
	Config *ios.Config
	// Position is the stanza index at which the new stanza was inserted.
	Position int
	// Questions are the differential examples shown, in order.
	Questions []RouteQuestion
	// Overlaps are the indices of original stanzas whose first-match regions
	// intersect the new stanza distinguishably.
	Overlaps []int
	// Renames maps snippet ancillary-list names to their fresh names in the
	// merged configuration (Figure 2's D2/D3 renaming).
	Renames map[string]string
	// Ambiguity is the run's information-gain ledger: candidate-space bits
	// before the search, per question, and at accept. Nil when the run was
	// not traced (the ledger rides the observability path).
	Ambiguity *ambiguity.Ledger
}

// InsertRouteMapStanza runs the full §2.2/§4 flow: merge the snippet's
// ancillary lists under fresh names, locate the distinguishing overlaps,
// binary-search the insertion gap with oracle questions, and insert.
//
// snippet must contain exactly one route-map with exactly one stanza (the
// verified LLM output); orig must contain mapName.
func InsertRouteMapStanza(orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	return insertWithSearch(nil, nil, orig, mapName, snippet, snippetMap, oracle, StrategyBinary, binarySearch)
}

// InsertRouteMapStanzaCached is InsertRouteMapStanza drawing its symbolic
// universe from cache (which may be nil).
func InsertRouteMapStanzaCached(cache *symbolic.SpaceCache, orig *ios.Config, mapName string, snippet *ios.Config, snippetMap string, oracle RouteOracle) (*RouteResult, error) {
	return insertWithSearch(cache, nil, orig, mapName, snippet, snippetMap, oracle, StrategyBinary, binarySearch)
}

// confirmQuestion extracts a concrete differential example from a symbolic
// candidate region, confirming with the evaluator that the two options
// genuinely differ.
func confirmQuestion(space *symbolic.RouteSpace, ev *policy.Evaluator, rm *ios.RouteMap, newStanza *ios.Stanza, stanzaIdx int, region bdd.Node) (RouteQuestion, bool, error) {
	if region == bdd.False {
		return RouteQuestion{}, false, nil
	}
	witnesses, err := space.Witnesses(region, maxProbes)
	if err != nil {
		return RouteQuestion{}, false, err
	}
	for _, w := range witnesses {
		oldV, err := ev.EvalRouteMap(rm, w)
		if err != nil {
			return RouteQuestion{}, false, err
		}
		if oldV.Index != stanzaIdx {
			continue // decode landed outside the first-match region; try next
		}
		newV := NewStanzaVerdict(newStanza, w)
		if analysis.VerdictsEqual(oldV, newV) {
			continue // abstraction artifact: options identical
		}
		return RouteQuestion{Input: w, NewVerdict: newV, OldVerdict: oldV, ProbedStanza: stanzaIdx}, true, nil
	}
	return RouteQuestion{}, false, nil
}

// NewStanzaVerdict is the behaviour of the new stanza in isolation on r.
func NewStanzaVerdict(st *ios.Stanza, r route.Route) policy.RouteVerdict {
	v := policy.RouteVerdict{Permit: st.Permit, Output: r}
	if st.Permit {
		v.Output = policy.ApplySets(st.Sets, r)
	}
	return v
}

// nextListName picks the next unused name in the configuration's D<k>
// sequence, matching the paper's Figure 2 style (D0, D1 exist → snippet
// lists become D2, D3). taken holds names already handed out in this
// insertion but not yet merged.
func nextListName(cfg *ios.Config, taken map[string]bool) string {
	max := -1
	for _, name := range cfg.ListNames() {
		var k int
		if n, err := fmt.Sscanf(name, "D%d", &k); err == nil && n == 1 && fmt.Sprintf("D%d", k) == name && k > max {
			max = k
		}
	}
	for k := max + 1; ; k++ {
		name := fmt.Sprintf("D%d", k)
		if !taken[name] && cfg.FreshName(name) == name {
			return name
		}
	}
}
