package clarify

import (
	"context"
	"testing"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/obs"
)

// TestTraceSpanShape runs the paper's §2.1 walkthrough with one injected
// synthesis fault and checks the structured trace: the stage spans exist,
// hang off the right parents, and carry durations and engine counters.
func TestTraceSpanShape(t *testing.T) {
	var captured *obs.Trace
	s := &Session{
		Client: llm.NewSimLLM(llm.FaultWrongValue),
		Config: ios.MustParse(paperISPOut),
		RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			return true, nil
		}),
		Observer: obs.SinkFunc(func(tr *obs.Trace) { captured = tr }),
	}
	if _, err := s.Submit(context.Background(), paperPrompt, "ISP_OUT"); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("observer never received a trace")
	}
	if captured.Root == nil || captured.Root.Name != "update" {
		t.Fatalf("root span = %+v, want name update", captured.Root)
	}

	// Parent lookup: map each span to the span it hangs off.
	parent := map[*obs.Span]*obs.Span{}
	var walk func(sp *obs.Span)
	walk = func(sp *obs.Span) {
		for _, c := range sp.Children {
			parent[c] = sp
			walk(c)
		}
	}
	walk(captured.Root)

	// The faulted walkthrough needs two synthesis attempts, so at least:
	// classify, spec-extract, synthesize-attempt-1, synthesize-attempt-2,
	// disambiguate — five stage spans beyond the root.
	stages := []string{"classify", "spec-extract", "synthesize-attempt-1", "synthesize-attempt-2", "disambiguate"}
	byName := map[string]*obs.Span{}
	for _, name := range stages {
		sp := captured.Find(name)
		if sp == nil {
			t.Fatalf("trace missing stage span %q", name)
		}
		byName[name] = sp
		if parent[sp] != captured.Root {
			t.Errorf("stage %q must hang off the root, got parent %v", name, parent[sp])
		}
		if sp.Duration <= 0 {
			t.Errorf("stage %q has no duration", name)
		}
	}
	if got := captured.SpanCount(); got < 6 {
		t.Fatalf("SpanCount = %d, want at least 6 (root + 5 stages)", got)
	}

	// Each synthesis attempt parses its snippet and verifies it against the
	// extracted specification.
	for _, attempt := range []string{"synthesize-attempt-1", "synthesize-attempt-2"} {
		asp := byName[attempt]
		var parse, verify *obs.Span
		for _, c := range asp.Children {
			switch c.Name {
			case "parse":
				parse = c
			case "verify":
				verify = c
			}
		}
		if parse == nil || verify == nil {
			t.Fatalf("%s children = %v, want parse and verify", attempt, spanNames(asp.Children))
		}
		if a, ok := verify.Attr("bdd-ite-calls"); !ok || a.Int <= 0 {
			t.Errorf("%s verify span lacks BDD counters: %+v ok=%v", attempt, a, ok)
		}
	}
	// The first attempt is rejected with fault feedback; the second verifies.
	if a, ok := byName["synthesize-attempt-1"].Attr("fault-feedback"); !ok || a.Str == "" {
		t.Errorf("attempt 1 must record fault feedback, got %+v ok=%v", a, ok)
	}
	if a, ok := byName["synthesize-attempt-2"].Attr("verified"); !ok || !a.Bool {
		t.Errorf("attempt 2 must be marked verified, got %+v ok=%v", a, ok)
	}

	// Disambiguation parks on the oracle and inserts the stanza: its
	// question-wait and insert spans sit under the disambiguate span.
	dsp := byName["disambiguate"]
	var waits int
	var insert *obs.Span
	for _, c := range dsp.Children {
		switch c.Name {
		case "question-wait":
			waits++
		case "insert":
			insert = c
		}
	}
	if waits == 0 {
		t.Error("disambiguate span has no question-wait children")
	}
	if insert == nil {
		t.Fatalf("disambiguate children = %v, want an insert span", spanNames(dsp.Children))
	}
	if a, ok := insert.Attr("position"); !ok || a.Int != 0 {
		t.Errorf("insert position attr = %+v ok=%v, want 0", a, ok)
	}
	if a, ok := dsp.Attr("bdd-ite-calls"); !ok || a.Int <= 0 {
		t.Errorf("disambiguate span lacks BDD counters: %+v ok=%v", a, ok)
	}
}

func spanNames(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
