package symbolic

import (
	"net/netip"
	"sync"
	"testing"

	"github.com/clarifynet/clarify/ios"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const cacheTestConfig = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip community-list expanded C0 permit _65000:100_
route-map RM deny 10
 match as-path D0
route-map RM permit 20
 match community C0
 set local-preference 200
route-map RM permit 30
 match ip address prefix-list D1
`

func TestFingerprintDeterministic(t *testing.T) {
	a := ios.MustParse(cacheTestConfig)
	b := ios.MustParse(cacheTestConfig)
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("identical configs have different fingerprints")
	}
	if Fingerprint(a, b) != Fingerprint(b, a) {
		// Patterns are deduped and sorted per config set, so order of the
		// set is immaterial when the union is equal.
		t.Error("fingerprint depends on config order despite equal pattern union")
	}
	// A new community pattern must change the fingerprint.
	c := ios.MustParse(cacheTestConfig)
	c.AddCommunityList("C9", true, ios.CommunityListEntry{Permit: true, Values: []string{"_65000:999_"}})
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint unchanged after adding a community pattern")
	}
	// Prefix lists do not participate in the universe: adding one must NOT
	// change the fingerprint.
	d := ios.MustParse(cacheTestConfig)
	d.AddPrefixList("P9", ios.PrefixListEntry{Seq: 10, Permit: true, Prefix: mustPrefix(t, "172.16.0.0/12"), Le: 24})
	if Fingerprint(a) != Fingerprint(d) {
		t.Error("fingerprint changed by a prefix list, which is not a universe input")
	}
}

func TestSpaceCacheHitMissCheckout(t *testing.T) {
	cfg := ios.MustParse(cacheTestConfig)
	cache := NewSpaceCache()

	s1, err := cache.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cache.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("two outstanding acquisitions share one space")
	}
	if st := cache.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses", st)
	}

	cache.Release(s1)
	cache.Release(s2)
	s3, err := cache.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != s1 && s3 != s2 {
		t.Error("released space was not reused")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
	}
	if st.Idle != 1 {
		t.Errorf("idle = %d, want 1 (one released space still parked)", st.Idle)
	}
}

func TestSpaceCacheNilSafe(t *testing.T) {
	cfg := ios.MustParse(cacheTestConfig)
	var cache *SpaceCache
	space, err := cache.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space == nil {
		t.Fatal("nil cache returned nil space")
	}
	cache.Release(space) // must not panic
}

// TestSpaceCacheReusedSpaceWorks: a cache hit must behave exactly like a
// fresh space on the §2.1-style queries the pipeline issues.
func TestSpaceCacheReusedSpaceWorks(t *testing.T) {
	cfg := ios.MustParse(cacheTestConfig)
	fresh, err := NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewSpaceCache()
	first, err := cache.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache.Release(first)
	reused, err := cache.Acquire(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Release(reused)

	rm := cfg.RouteMaps["RM"]
	want, err := fresh.FirstMatch(cfg, rm)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reused.FirstMatch(cfg, rm)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("region counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		wc := fresh.Pool.SatCount(want[i])
		gc := reused.Pool.SatCount(got[i])
		if wc.Cmp(gc) != 0 {
			t.Errorf("region %d: satcount %v (fresh) vs %v (reused)", i, wc, gc)
		}
	}
}

// TestSpaceCacheConcurrent drives one shared cache from many goroutines
// (run under -race): checkout semantics must keep each acquired space
// private to its holder even when fingerprints collide.
func TestSpaceCacheConcurrent(t *testing.T) {
	cache := NewSpaceCache()
	cfg := ios.MustParse(cacheTestConfig)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				space, err := cache.Acquire(cfg)
				if err != nil {
					errs <- err
					return
				}
				rm := cfg.RouteMaps["RM"]
				regions, err := space.FirstMatch(cfg, rm)
				if err != nil {
					errs <- err
					cache.Release(space)
					return
				}
				if _, _, err := space.Witness(regions[1]); err != nil {
					errs <- err
				}
				cache.Release(space)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits+st.Misses != 64 {
		t.Errorf("hits+misses = %d, want 64", st.Hits+st.Misses)
	}
	if st.Hits == 0 {
		t.Error("no cache hits across 64 same-fingerprint acquisitions")
	}
}
