// Package symbolic encodes routes, packets, and the policies that match them
// as BDD predicates, and decodes BDD models back into concrete witnesses.
//
// It is the replacement for Batfish's symbolic route/filter analysis: route
// attributes become bit vectors, community and AS-path matching become
// atomic-predicate variables (internal/atoms), match clauses become BDDs,
// and first-match semantics becomes the usual ¬earlier ∧ this chain. The
// concrete evaluator (internal/policy) and this encoder are kept in lockstep
// by property tests.
package symbolic

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"github.com/clarifynet/clarify/atoms"
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ciscorx"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/route"
)

// Route attribute field widths (bits).
const (
	widthPlen   = 6
	widthAddr   = 32
	widthLP     = 32
	widthMED    = 32
	widthTag    = 32
	widthWeight = 16
	widthNH     = 32
)

// RouteSpace encodes the BGP route universe for a fixed set of
// configurations. All configurations whose policies will be compared must be
// passed to NewRouteSpace together so their regexes share one atomic
// partition.
type RouteSpace struct {
	Pool *bdd.Pool

	offPlen, offAddr, offLP, offMED, offTag, offWeight, offNH int
	offPathAtoms, offCommAtoms                                int

	plen, addr, lp, med, tag, weight, nh bdd.Vec

	pathAtoms *atoms.Universe
	commAtoms *atoms.Universe

	// Valid constrains models to decodable routes: prefix length ≤ 32 and
	// exactly one AS-path atom inhabited.
	Valid bdd.Node

	// fp is the content fingerprint of the inputs that determined this
	// universe; set by SpaceCache.Acquire so Release can file the space back.
	fp string
}

// spacePatterns collects, in deterministic order, exactly the inputs that
// determine a RouteSpace: every as-path regex, community regex and community
// literal (including set-community literals) appearing in the given configs.
// Two config sets with identical pattern sequences produce structurally
// identical universes, which is what makes SpaceCache sound.
//
// Iteration over the config maps is order-sensitive, so patterns are gathered
// per list in name-sorted order.
func spacePatterns(cfgs []*ios.Config) (pathPatterns, commPatterns []string) {
	for _, cfg := range cfgs {
		for _, name := range sortedKeys(cfg.ASPathLists) {
			for _, e := range cfg.ASPathLists[name].Entries {
				pathPatterns = append(pathPatterns, e.Regex)
			}
		}
		for _, name := range sortedKeys(cfg.CommunityLists) {
			l := cfg.CommunityLists[name]
			for _, e := range l.Entries {
				if l.Expanded {
					commPatterns = append(commPatterns, e.Values[0])
				} else {
					for _, lit := range e.Values {
						commPatterns = append(commPatterns, exactCommunityPattern(lit))
					}
				}
			}
		}
		// Set clauses introduce communities the comparison logic must be able
		// to express exactly.
		for _, name := range sortedKeys(cfg.RouteMaps) {
			for _, st := range cfg.RouteMaps[name].Stanzas {
				for _, s := range st.Sets {
					if sc, ok := s.(ios.SetCommunity); ok {
						for _, lit := range sc.Communities {
							commPatterns = append(commPatterns, exactCommunityPattern(lit))
						}
					}
				}
			}
		}
	}
	return pathPatterns, commPatterns
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewRouteSpace builds the route universe covering every as-path regex,
// community regex and community literal appearing in the given configs.
func NewRouteSpace(cfgs ...*ios.Config) (*RouteSpace, error) {
	pathPatterns, commPatterns := spacePatterns(cfgs)
	pathU, err := atoms.Build(pathPatterns, ciscorx.CompilePath, ciscorx.ValidPath())
	if err != nil {
		return nil, err
	}
	commU, err := atoms.Build(commPatterns, ciscorx.CompileCommunity, ciscorx.ValidCommunity())
	if err != nil {
		return nil, err
	}

	s := &RouteSpace{pathAtoms: pathU, commAtoms: commU}
	off := 0
	next := func(w int) int {
		o := off
		off += w
		return o
	}
	s.offPlen = next(widthPlen)
	s.offAddr = next(widthAddr)
	s.offLP = next(widthLP)
	s.offMED = next(widthMED)
	s.offTag = next(widthTag)
	s.offWeight = next(widthWeight)
	s.offNH = next(widthNH)
	s.offPathAtoms = next(pathU.NumAtoms())
	s.offCommAtoms = next(commU.NumAtoms())

	s.Pool = bdd.NewPool(off)
	s.plen = bdd.NewVec(s.Pool, s.offPlen, widthPlen)
	s.addr = bdd.NewVec(s.Pool, s.offAddr, widthAddr)
	s.lp = bdd.NewVec(s.Pool, s.offLP, widthLP)
	s.med = bdd.NewVec(s.Pool, s.offMED, widthMED)
	s.tag = bdd.NewVec(s.Pool, s.offTag, widthTag)
	s.weight = bdd.NewVec(s.Pool, s.offWeight, widthWeight)
	s.nh = bdd.NewVec(s.Pool, s.offNH, widthNH)

	s.Valid = s.Pool.And(s.plen.LeqConst(32), s.exactlyOnePathAtom())
	return s, nil
}

func exactCommunityPattern(lit string) string { return "^" + lit + "$" }

func (s *RouteSpace) exactlyOnePathAtom() bdd.Node {
	k := s.pathAtoms.NumAtoms()
	p := s.Pool
	atLeastOne := bdd.False
	atMostOne := bdd.True
	for i := 0; i < k; i++ {
		vi := p.Var(s.offPathAtoms + i)
		atLeastOne = p.Or(atLeastOne, vi)
		for j := i + 1; j < k; j++ {
			atMostOne = p.And(atMostOne, p.Not(p.And(vi, p.Var(s.offPathAtoms+j))))
		}
	}
	return p.And(atLeastOne, atMostOne)
}

// NumVars reports the universe's variable count (for sizing diagnostics).
func (s *RouteSpace) NumVars() int { return s.Pool.NumVars() }

// PathAtomCount and CommAtomCount expose partition sizes (ablation benches).
func (s *RouteSpace) PathAtomCount() int { return s.pathAtoms.NumAtoms() }

// CommAtomCount reports the community partition size.
func (s *RouteSpace) CommAtomCount() int { return s.commAtoms.NumAtoms() }

// ---------- Clause encodings ----------

// StanzaPred returns the BDD for "every match clause of st holds".
func (s *RouteSpace) StanzaPred(cfg *ios.Config, st *ios.Stanza) (bdd.Node, error) {
	pred := bdd.True
	for _, m := range st.Matches {
		mp, err := s.MatchPred(cfg, m)
		if err != nil {
			return bdd.False, err
		}
		pred = s.Pool.And(pred, mp)
	}
	return pred, nil
}

// MatchPred encodes one match clause.
func (s *RouteSpace) MatchPred(cfg *ios.Config, m ios.Match) (bdd.Node, error) {
	switch m := m.(type) {
	case ios.MatchASPath:
		l, ok := cfg.ASPathLists[m.List]
		if !ok {
			return bdd.False, fmt.Errorf("symbolic: undefined as-path list %q", m.List)
		}
		return s.asPathListPred(l)
	case ios.MatchPrefixList:
		l, ok := cfg.PrefixLists[m.List]
		if !ok {
			return bdd.False, fmt.Errorf("symbolic: undefined prefix-list %q", m.List)
		}
		return s.PrefixListPred(l), nil
	case ios.MatchCommunity:
		l, ok := cfg.CommunityLists[m.List]
		if !ok {
			return bdd.False, fmt.Errorf("symbolic: undefined community-list %q", m.List)
		}
		return s.communityListPred(l)
	case ios.MatchNextHop:
		l, ok := cfg.PrefixLists[m.List]
		if !ok {
			return bdd.False, fmt.Errorf("symbolic: undefined next-hop prefix-list %q", m.List)
		}
		return s.nextHopListPred(l), nil
	case ios.MatchLocalPref:
		return s.lp.EqConst(uint64(m.Value)), nil
	case ios.MatchMetric:
		return s.med.EqConst(uint64(m.Value)), nil
	case ios.MatchTag:
		return s.tag.EqConst(uint64(m.Value)), nil
	default:
		return bdd.False, fmt.Errorf("symbolic: unsupported match clause %T", m)
	}
}

// PrefixListPred encodes first-match permit/deny entry semantics.
func (s *RouteSpace) PrefixListPred(l *ios.PrefixList) bdd.Node {
	p := s.Pool
	entries := append([]ios.PrefixListEntry(nil), l.Entries...)
	// Stable insertion sort by sequence number (mirrors the evaluator).
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].Seq > entries[j].Seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	permitted := bdd.False
	notPrev := bdd.True
	for _, e := range entries {
		m := s.prefixEntryPred(e)
		if e.Permit {
			permitted = p.Or(permitted, p.And(notPrev, m))
		}
		notPrev = p.And(notPrev, p.Not(m))
	}
	return permitted
}

func (s *RouteSpace) prefixEntryPred(e ios.PrefixListEntry) bdd.Node {
	lo, hi := e.LenRange()
	addr := uint64(ios.AddrU32(e.Prefix.Addr()))
	return s.Pool.And(
		s.addr.PrefixEq(addr, e.Prefix.Bits()),
		s.plen.InRange(uint64(lo), uint64(hi)),
	)
}

// nextHopListPred applies prefix-list first-match chaining to the next-hop
// vector (the address is a /32, so only entries whose length range includes
// 32 can match).
func (s *RouteSpace) nextHopListPred(l *ios.PrefixList) bdd.Node {
	p := s.Pool
	entries := append([]ios.PrefixListEntry(nil), l.Entries...)
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j-1].Seq > entries[j].Seq; j-- {
			entries[j-1], entries[j] = entries[j], entries[j-1]
		}
	}
	permitted := bdd.False
	notPrev := bdd.True
	for _, e := range entries {
		lo, hi := e.LenRange()
		var m bdd.Node = bdd.False
		if lo <= 32 && 32 <= hi {
			m = s.nh.PrefixEq(uint64(ios.AddrU32(e.Prefix.Addr())), e.Prefix.Bits())
		}
		if e.Permit {
			permitted = p.Or(permitted, p.And(notPrev, m))
		}
		notPrev = p.And(notPrev, p.Not(m))
	}
	return permitted
}

// PrefixEntryPred exposes the match region of a single prefix-list entry
// (used by list-level disambiguation).
func (s *RouteSpace) PrefixEntryPred(e ios.PrefixListEntry) bdd.Node {
	return s.prefixEntryPred(e)
}

// ASPathEntryPred returns the set of routes whose AS path matches the
// entry's regex. The regex must be in the universe (include a config
// defining it when constructing the space).
func (s *RouteSpace) ASPathEntryPred(e ios.ASPathEntry) (bdd.Node, error) {
	pi := s.pathAtoms.PatternIndex(e.Regex)
	if pi < 0 {
		return bdd.False, fmt.Errorf("symbolic: as-path regex %q not in universe", e.Regex)
	}
	m := bdd.False
	for _, ai := range s.pathAtoms.MatchingAtoms(pi) {
		m = s.Pool.Or(m, s.Pool.Var(s.offPathAtoms+ai))
	}
	return m, nil
}

// CommunityEntryPred returns the set of routes matched by a single
// community-list entry: for expanded lists, some community matches the
// regex; for standard lists, every listed literal is present.
func (s *RouteSpace) CommunityEntryPred(expanded bool, e ios.CommunityListEntry) (bdd.Node, error) {
	p := s.Pool
	if expanded {
		pi := s.commAtoms.PatternIndex(e.Values[0])
		if pi < 0 {
			return bdd.False, fmt.Errorf("symbolic: community regex %q not in universe", e.Values[0])
		}
		m := bdd.False
		for _, ai := range s.commAtoms.MatchingAtoms(pi) {
			m = p.Or(m, p.Var(s.offCommAtoms+ai))
		}
		return m, nil
	}
	m := bdd.True
	for _, lit := range e.Values {
		av, err := s.literalCommunityVar(lit)
		if err != nil {
			return bdd.False, err
		}
		m = p.And(m, av)
	}
	return m, nil
}

func (s *RouteSpace) asPathListPred(l *ios.ASPathList) (bdd.Node, error) {
	p := s.Pool
	permitted := bdd.False
	notPrev := bdd.True
	for _, e := range l.Entries {
		pi := s.pathAtoms.PatternIndex(e.Regex)
		if pi < 0 {
			return bdd.False, fmt.Errorf("symbolic: as-path regex %q not in universe (config not passed to NewRouteSpace?)", e.Regex)
		}
		m := bdd.False
		for _, ai := range s.pathAtoms.MatchingAtoms(pi) {
			m = p.Or(m, p.Var(s.offPathAtoms+ai))
		}
		if e.Permit {
			permitted = p.Or(permitted, p.And(notPrev, m))
		}
		notPrev = p.And(notPrev, p.Not(m))
	}
	return permitted, nil
}

func (s *RouteSpace) communityListPred(l *ios.CommunityList) (bdd.Node, error) {
	p := s.Pool
	permitted := bdd.False
	notPrev := bdd.True
	for _, e := range l.Entries {
		var m bdd.Node
		if l.Expanded {
			pi := s.commAtoms.PatternIndex(e.Values[0])
			if pi < 0 {
				return bdd.False, fmt.Errorf("symbolic: community regex %q not in universe", e.Values[0])
			}
			m = bdd.False
			for _, ai := range s.commAtoms.MatchingAtoms(pi) {
				m = p.Or(m, p.Var(s.offCommAtoms+ai))
			}
		} else {
			m = bdd.True
			for _, lit := range e.Values {
				av, err := s.literalCommunityVar(lit)
				if err != nil {
					return bdd.False, err
				}
				m = p.And(m, av)
			}
		}
		if e.Permit {
			permitted = p.Or(permitted, p.And(notPrev, m))
		}
		notPrev = p.And(notPrev, p.Not(m))
	}
	return permitted, nil
}

// literalCommunityVar returns the atom variable for the singleton atom {lit}.
func (s *RouteSpace) literalCommunityVar(lit string) (bdd.Node, error) {
	pi := s.commAtoms.PatternIndex(exactCommunityPattern(lit))
	if pi < 0 {
		return bdd.False, fmt.Errorf("symbolic: community literal %q not in universe", lit)
	}
	matching := s.commAtoms.MatchingAtoms(pi)
	if len(matching) != 1 {
		return bdd.False, fmt.Errorf("symbolic: literal %q atom not singleton (%d atoms)", lit, len(matching))
	}
	return s.Pool.Var(s.offCommAtoms + matching[0]), nil
}

// FirstMatch returns, for each stanza, the BDD of routes first-matched by it,
// plus a final region for routes matching no stanza (the implicit deny).
//
// Route maps using `continue` are rejected: with continue, the first
// matching stanza no longer decides the verdict, so every analysis built on
// these regions (comparison, placement) would be unsound. Overlap analysis
// does not use FirstMatch and accepts continue, exactly as the paper's §3
// measurement does ("we ignore actions for route maps because a route-map
// stanza may be linked ... using goto, continue and call statements").
func (s *RouteSpace) FirstMatch(cfg *ios.Config, rm *ios.RouteMap) ([]bdd.Node, error) {
	if rm.HasContinue() {
		return nil, fmt.Errorf("symbolic: route-map %s uses continue; first-match analyses are unsupported", rm.Name)
	}
	p := s.Pool
	out := make([]bdd.Node, 0, len(rm.Stanzas)+1)
	notPrev := bdd.True
	for _, st := range rm.Stanzas {
		pred, err := s.StanzaPred(cfg, st)
		if err != nil {
			return nil, err
		}
		out = append(out, p.And(notPrev, pred))
		notPrev = p.And(notPrev, p.Not(pred))
	}
	out = append(out, notPrev)
	return out, nil
}

// ---------- Concrete ↔ symbolic ----------

// EncodeRoute renders a concrete route as a total assignment vector suitable
// for bdd.Pool.Eval.
func (s *RouteSpace) EncodeRoute(r route.Route) []bool {
	v := make([]bool, s.Pool.NumVars())
	asg := map[int]bool{}
	bdd.EncodeVec(asg, s.offPlen, widthPlen, uint64(r.Network.Bits()))
	bdd.EncodeVec(asg, s.offAddr, widthAddr, uint64(ios.AddrU32(r.Network.Addr())))
	bdd.EncodeVec(asg, s.offLP, widthLP, uint64(r.LocalPref))
	bdd.EncodeVec(asg, s.offMED, widthMED, uint64(r.MED))
	bdd.EncodeVec(asg, s.offTag, widthTag, uint64(r.Tag))
	bdd.EncodeVec(asg, s.offWeight, widthWeight, uint64(r.Weight))
	nh := uint64(0)
	if r.NextHop.IsValid() {
		nh = uint64(ios.AddrU32(r.NextHop))
	}
	bdd.EncodeVec(asg, s.offNH, widthNH, nh)
	for lvl, val := range asg {
		v[lvl] = val
	}
	if ai := s.pathAtoms.Classify(ciscorx.PathSubject(r.FlatASPath())); ai >= 0 {
		v[s.offPathAtoms+ai] = true
	}
	for _, c := range r.Communities {
		if ai := s.commAtoms.Classify(ciscorx.CommunitySubject(c.String())); ai >= 0 {
			v[s.offCommAtoms+ai] = true
		}
	}
	return v
}

// Decode converts a (possibly partial) satisfying assignment into a concrete
// route. Unconstrained fields take Cisco-flavoured defaults (local preference
// 100, next hop 0.0.0.1), mirroring the defaults in the paper's examples.
func (s *RouteSpace) Decode(asg map[int]bool) (route.Route, error) {
	plen := bdd.DecodeVec(asg, s.offPlen, widthPlen)
	if plen > 32 {
		return route.Route{}, fmt.Errorf("symbolic: model has prefix length %d", plen)
	}
	addr := uint32(bdd.DecodeVec(asg, s.offAddr, widthAddr))
	pfx := netip.PrefixFrom(ios.U32ToAddr(addr), int(plen)).Masked()

	r := route.Route{Network: pfx}
	if fieldPresent(asg, s.offLP, widthLP) {
		r.LocalPref = uint32(bdd.DecodeVec(asg, s.offLP, widthLP))
	} else {
		r.LocalPref = 100
	}
	r.MED = uint32(bdd.DecodeVec(asg, s.offMED, widthMED))
	r.Tag = uint32(bdd.DecodeVec(asg, s.offTag, widthTag))
	r.Weight = uint16(bdd.DecodeVec(asg, s.offWeight, widthWeight))
	if fieldPresent(asg, s.offNH, widthNH) {
		r.NextHop = ios.U32ToAddr(uint32(bdd.DecodeVec(asg, s.offNH, widthNH)))
	} else {
		r.NextHop = netip.MustParseAddr("0.0.0.1")
	}

	// AS path: the inhabited atom's witness. With Valid conjoined exactly one
	// atom variable is true; a fully unconstrained assignment decodes to the
	// empty path.
	for i := 0; i < s.pathAtoms.NumAtoms(); i++ {
		if asg[s.offPathAtoms+i] {
			asns, err := parsePathSubject(s.pathAtoms.Atoms[i].Witness)
			if err != nil {
				return route.Route{}, err
			}
			if len(asns) > 0 {
				r.ASPath = []route.ASPathSegment{{ASNs: asns}}
			}
			break
		}
	}

	// Communities: one witness per inhabited atom.
	for i := 0; i < s.commAtoms.NumAtoms(); i++ {
		if asg[s.offCommAtoms+i] {
			lit, ok := s.commAtoms.WitnessWhere(i, 16, func(w string) bool {
				_, err := parseCommunitySubject(w)
				return err == nil
			})
			if !ok {
				return route.Route{}, fmt.Errorf("symbolic: community atom %d has no decodable witness", i)
			}
			c, _ := parseCommunitySubject(lit)
			r = r.AddCommunity(c)
		}
	}
	return r, nil
}

func fieldPresent(asg map[int]bool, off, width int) bool {
	for i := 0; i < width; i++ {
		if _, ok := asg[off+i]; ok {
			return true
		}
	}
	return false
}

func parsePathSubject(w string) ([]uint32, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(w, "^"), "$")
	if body == "" {
		return nil, nil
	}
	fields := strings.Fields(body)
	out := make([]uint32, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("symbolic: bad path witness %q: %v", w, err)
		}
		out[i] = uint32(v)
	}
	return out, nil
}

func parseCommunitySubject(w string) (route.Community, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(w, "^"), "$")
	return route.ParseCommunity(body)
}

// Witness returns a concrete route satisfying f (after conjoining the
// validity constraint); ok is false when f ∧ Valid is unsatisfiable.
func (s *RouteSpace) Witness(f bdd.Node) (route.Route, bool, error) {
	asg, ok := s.Pool.AnySat(s.Pool.And(f, s.Valid))
	if !ok {
		return route.Route{}, false, nil
	}
	r, err := s.Decode(asg)
	if err != nil {
		return route.Route{}, false, err
	}
	return r, true, nil
}

// Witnesses returns up to max distinct concrete routes satisfying f.
func (s *RouteSpace) Witnesses(f bdd.Node, max int) ([]route.Route, error) {
	var out []route.Route
	var decodeErr error
	s.Pool.AllSat(s.Pool.And(f, s.Valid), func(cube map[int]bool) bool {
		r, err := s.Decode(cube)
		if err != nil {
			decodeErr = err
			return false
		}
		out = append(out, r)
		return len(out) < max
	})
	return out, decodeErr
}
