package symbolic

import (
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/obs"
)

// ObservePool annotates sp with the BDD workload performed on p since the
// before snapshot, plus the pool's final size. Safe on a nil span.
func ObservePool(sp *obs.Span, p *bdd.Pool, before bdd.Counters) {
	if sp == nil {
		return
	}
	d := p.Counters().Sub(before)
	sp.SetInt("bdd-ite-calls", d.ITECalls)
	sp.SetInt("bdd-unique-hits", d.UniqueHits)
	sp.SetInt("bdd-nodes-built", d.UniqueMisses)
	sp.SetInt("bdd-growths", d.Growths)
	sp.SetInt("bdd-pool-size", int64(p.Size()))
}

// ObserveInto annotates sp with the workload performed on this space since
// the before snapshot: the BDD counter deltas plus the universe's atomic
// partition sizes. Call it before releasing the space back to a SpaceCache —
// once released, another goroutine may acquire the space and advance its
// counters. Safe on a nil span.
func (s *RouteSpace) ObserveInto(sp *obs.Span, before bdd.Counters) {
	if sp == nil {
		return
	}
	ObservePool(sp, s.Pool, before)
	sp.SetInt("path-atoms", int64(s.PathAtomCount()))
	sp.SetInt("comm-atoms", int64(s.CommAtomCount()))
	if s.fp != "" {
		sp.SetBool("space-cached", true)
	}
}

// ObserveInto annotates sp with the workload performed on this space since
// the before snapshot. ACL spaces are built fresh per analysis, so before is
// usually the zero Counters. Safe on a nil span.
func (s *ACLSpace) ObserveInto(sp *obs.Span, before bdd.Counters) {
	ObservePool(sp, s.Pool, before)
}
