package symbolic

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"github.com/clarifynet/clarify/ios"
)

// Fingerprint returns a content hash of exactly the inputs that determine a
// RouteSpace: the ordered as-path pattern sequence and the ordered community
// pattern sequence (regexes, literals, and set-community literals) collected
// from the given configs. Two config sets with equal fingerprints yield
// structurally interchangeable universes — every pattern lookup inside
// RouteSpace is by pattern string, never by config identity — so a space
// built for one can serve the other.
//
// Anything else in a config (prefix lists, match clauses, stanza order,
// numeric match/set values) does NOT invalidate a cached space: those inputs
// are encoded per call against fixed bit vectors, not baked into the
// universe.
func Fingerprint(cfgs ...*ios.Config) string {
	path, comm := spacePatterns(cfgs)
	h := sha256.New()
	var lenBuf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(s)))
		h.Write(lenBuf[:])
		h.Write([]byte(s))
	}
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(path)))
	h.Write(lenBuf[:])
	for _, p := range path {
		writeStr(p)
	}
	for _, c := range comm {
		writeStr(c)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache sizing defaults; see SpaceCache.
const (
	// defaultMaxIdle bounds idle spaces retained per fingerprint. Distinct
	// concurrent users of the same universe each check one out, so a small
	// pool covers typical worker-pool concurrency.
	defaultMaxIdle = 8
	// defaultMaxPoolNodes drops a space at Release once its BDD pool has
	// accumulated this many nodes, bounding memory held by the cache while
	// keeping the steady-state reuse win (typical verification pools hold a
	// few thousand nodes).
	defaultMaxPoolNodes = 1 << 21
)

// SpaceCacheStats is a snapshot of cache effectiveness counters.
type SpaceCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Idle is the number of spaces currently parked in the cache.
	Idle int `json:"idle"`
}

// SpaceCache is a content-addressed checkout pool of RouteSpaces. Acquire
// returns an idle cached space whose fingerprint matches the requested
// configs (or builds a fresh one), and Release files it back for the next
// caller. While checked out a space is owned exclusively by its acquirer —
// bdd.Pool is not safe for concurrent use — so the cache itself is safe for
// concurrent Acquire/Release from many goroutines; same-fingerprint
// concurrent acquirers simply each get their own space.
//
// Reuse is the point: a released space keeps its hash-consed node table and
// ITE cache, so repeated analyses over the same pattern universe (the
// daemon's steady state — every verification of a snippet against the same
// spec, every re-disambiguation of an unchanged config) skip both the
// regex→DFA→atomic-predicate construction and the re-derivation of BDD
// nodes.
//
// A nil *SpaceCache is valid and disables caching: Acquire builds fresh
// spaces and Release discards them.
type SpaceCache struct {
	mu     sync.Mutex
	idle   map[string][]*RouteSpace
	hits   int64
	misses int64

	// maxIdlePerKey bounds idle spaces kept per fingerprint (0 = default).
	maxIdlePerKey int
	// maxPoolNodes drops over-grown spaces at Release (0 = default).
	maxPoolNodes int
}

// NewSpaceCache returns an empty cache with default bounds.
func NewSpaceCache() *SpaceCache {
	return &SpaceCache{idle: map[string][]*RouteSpace{}}
}

func (c *SpaceCache) limits() (maxIdle, maxNodes int) {
	maxIdle, maxNodes = c.maxIdlePerKey, c.maxPoolNodes
	if maxIdle <= 0 {
		maxIdle = defaultMaxIdle
	}
	if maxNodes <= 0 {
		maxNodes = defaultMaxPoolNodes
	}
	return maxIdle, maxNodes
}

// Acquire returns a RouteSpace for the given configs, reusing an idle cached
// space when the fingerprint matches. The caller owns the space until
// Release. On a nil cache it is exactly NewRouteSpace.
func (c *SpaceCache) Acquire(cfgs ...*ios.Config) (*RouteSpace, error) {
	if c == nil {
		return NewRouteSpace(cfgs...)
	}
	fp := Fingerprint(cfgs...)
	c.mu.Lock()
	if spaces := c.idle[fp]; len(spaces) > 0 {
		s := spaces[len(spaces)-1]
		c.idle[fp] = spaces[:len(spaces)-1]
		c.hits++
		c.mu.Unlock()
		return s, nil
	}
	c.misses++
	c.mu.Unlock()
	s, err := NewRouteSpace(cfgs...)
	if err != nil {
		return nil, err
	}
	s.fp = fp
	return s, nil
}

// Release files a space acquired from this cache back for reuse. Spaces the
// cache did not create, over-grown spaces, and releases beyond the per-key
// idle bound are dropped. Safe on a nil cache.
func (c *SpaceCache) Release(s *RouteSpace) {
	if c == nil || s == nil || s.fp == "" {
		return
	}
	maxIdle, maxNodes := c.limits()
	if s.Pool.Size() > maxNodes {
		return
	}
	c.mu.Lock()
	if len(c.idle[s.fp]) < maxIdle {
		c.idle[s.fp] = append(c.idle[s.fp], s)
	}
	c.mu.Unlock()
}

// Stats snapshots the hit/miss counters. Safe on a nil cache.
func (c *SpaceCache) Stats() SpaceCacheStats {
	if c == nil {
		return SpaceCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, spaces := range c.idle {
		n += len(spaces)
	}
	return SpaceCacheStats{Hits: c.hits, Misses: c.misses, Idle: n}
}
