package symbolic

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/policy"
)

const testACL = `ip access-list extended EDGE
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 80
 deny udp 10.0.0.0 0.0.0.255 any
 permit tcp any any established
 deny ip any any
`

func TestACEPredWitness(t *testing.T) {
	cfg := ios.MustParse(testACL)
	acl := cfg.ACLs["EDGE"]
	s := NewACLSpace()
	for i, e := range acl.Entries {
		pred := s.ACEPred(e)
		pk, ok := s.Witness(pred)
		if !ok {
			t.Fatalf("entry %d unsatisfiable", i)
		}
		if !policy.ACEMatches(e, pk) {
			t.Errorf("entry %d witness %s does not match concretely", i, pk)
		}
	}
}

func TestACLFirstMatchPartition(t *testing.T) {
	cfg := ios.MustParse(testACL)
	s := NewACLSpace()
	regions := s.FirstMatch(cfg.ACLs["EDGE"])
	p := s.Pool
	all := bdd.False
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if p.And(regions[i], regions[j]) != bdd.False {
				t.Errorf("regions %d,%d overlap", i, j)
			}
		}
		all = p.Or(all, regions[i])
	}
	if all != bdd.True {
		t.Error("regions do not cover header space")
	}
	// The catch-all deny makes the implicit-deny region empty.
	if regions[len(regions)-1] != bdd.False {
		t.Error("implicit deny should be unreachable behind deny ip any any")
	}
}

func TestPermitSetMatchesEvaluator(t *testing.T) {
	cfg := ios.MustParse(testACL)
	acl := cfg.ACLs["EDGE"]
	s := NewACLSpace()
	permit := s.PermitSet(acl)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		pk := testgen.Packet(rng)
		want := policy.EvalACL(acl, pk).Permit
		if got := s.Pool.Eval(permit, s.EncodePacket(pk)); got != want {
			t.Fatalf("packet %s: symbolic=%v concrete=%v", pk, got, want)
		}
	}
}

// TestQuickACLAgreement: random ACLs, random packets — first-match region
// chosen symbolically equals the evaluator's verdict index.
func TestQuickACLAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		cfg := testgen.ACL(rng, "A", 6)
		acl := cfg.ACLs["A"]
		s := NewACLSpace()
		regions := s.FirstMatch(acl)
		for i := 0; i < 60; i++ {
			pk := testgen.Packet(rng)
			v := policy.EvalACL(acl, pk)
			want := v.Index
			if want == policy.ImplicitDeny {
				want = len(regions) - 1
			}
			vec := s.EncodePacket(pk)
			for ri, reg := range regions {
				if got := s.Pool.Eval(reg, vec); got != (ri == want) {
					t.Fatalf("trial %d packet %s: region %d=%v, want index %d\nACL:\n%s",
						trial, pk, ri, got, v.Index, cfg.Print())
				}
			}
		}
	}
}

func TestACLWitnessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		cfg := testgen.ACL(rng, "A", 5)
		acl := cfg.ACLs["A"]
		s := NewACLSpace()
		for i, reg := range s.FirstMatch(acl) {
			pk, ok := s.Witness(reg)
			if !ok {
				continue // region genuinely empty (shadowed entry)
			}
			v := policy.EvalACL(acl, pk)
			want := i
			if i == len(acl.Entries) {
				want = policy.ImplicitDeny
			}
			if v.Index != want {
				t.Fatalf("trial %d: witness %s of region %d evaluates to %d\nACL:\n%s",
					trial, pk, i, v.Index, cfg.Print())
			}
		}
	}
}

func TestPortEdgeCases(t *testing.T) {
	s := NewACLSpace()
	// lt 0 and gt 65535 are unsatisfiable.
	lt0 := &ios.ACE{Permit: true, Protocol: ios.ProtoSpec{Value: 6},
		Src: ios.AddrSpec{Any: true}, Dst: ios.AddrSpec{Any: true},
		SrcPort: ios.PortSpec{Op: ios.PortLt, Lo: 0}}
	if s.ACEPred(lt0) != bdd.False {
		t.Error("lt 0 should be unsatisfiable")
	}
	gtMax := &ios.ACE{Permit: true, Protocol: ios.ProtoSpec{Value: 6},
		Src: ios.AddrSpec{Any: true}, Dst: ios.AddrSpec{Any: true},
		DstPort: ios.PortSpec{Op: ios.PortGt, Lo: 0xFFFF}}
	if s.ACEPred(gtMax) != bdd.False {
		t.Error("gt 65535 should be unsatisfiable")
	}
}

func TestEstablishedWitness(t *testing.T) {
	cfg := ios.MustParse("ip access-list extended A\n permit tcp any any established\n")
	s := NewACLSpace()
	pk, ok := s.Witness(s.ACEPred(cfg.ACLs["A"].Entries[0]))
	if !ok || !pk.Established || pk.Protocol != packet.ProtoTCP {
		t.Errorf("witness = %s, ok=%v", pk, ok)
	}
}
