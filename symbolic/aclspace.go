package symbolic

import (
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
)

// Packet header field widths (bits).
const (
	widthProto = 8
	widthIP    = 32
	widthPort  = 16
)

// ACLSpace encodes the packet-header universe for ACL analyses: protocol,
// source/destination address, source/destination port and the TCP
// "established" bit — 105 BDD variables total.
type ACLSpace struct {
	Pool *bdd.Pool

	offProto, offSrc, offSrcPort, offDst, offDstPort, offEst int
	offICMPType, offICMPCode                                 int

	proto, src, sport, dst, dport, icmpType, icmpCode bdd.Vec
	est                                               bdd.Node
}

// NewACLSpace builds the packet universe. ACL analyses are self-contained,
// so unlike RouteSpace no configuration needs to be supplied up front.
func NewACLSpace() *ACLSpace {
	s := &ACLSpace{}
	off := 0
	next := func(w int) int {
		o := off
		off += w
		return o
	}
	s.offProto = next(widthProto)
	s.offSrc = next(widthIP)
	s.offSrcPort = next(widthPort)
	s.offDst = next(widthIP)
	s.offDstPort = next(widthPort)
	s.offEst = next(1)
	s.offICMPType = next(8)
	s.offICMPCode = next(8)

	s.Pool = bdd.NewPool(off)
	s.proto = bdd.NewVec(s.Pool, s.offProto, widthProto)
	s.src = bdd.NewVec(s.Pool, s.offSrc, widthIP)
	s.sport = bdd.NewVec(s.Pool, s.offSrcPort, widthPort)
	s.dst = bdd.NewVec(s.Pool, s.offDst, widthIP)
	s.dport = bdd.NewVec(s.Pool, s.offDstPort, widthPort)
	s.est = s.Pool.Var(s.offEst)
	s.icmpType = bdd.NewVec(s.Pool, s.offICMPType, 8)
	s.icmpCode = bdd.NewVec(s.Pool, s.offICMPCode, 8)
	return s
}

// ACEPred encodes the match condition of one access-control entry.
func (s *ACLSpace) ACEPred(e *ios.ACE) bdd.Node {
	p := s.Pool
	pred := bdd.True
	if !e.Protocol.Any {
		pred = p.And(pred, s.proto.EqConst(uint64(e.Protocol.Value)))
	}
	pred = p.And(pred, s.addrPred(e.Src, s.src))
	pred = p.And(pred, s.addrPred(e.Dst, s.dst))
	pred = p.And(pred, s.portPred(e.SrcPort, s.sport))
	pred = p.And(pred, s.portPred(e.DstPort, s.dport))
	if e.Established {
		pred = p.And(pred, s.est)
	}
	if e.ICMP != nil {
		pred = p.And(pred, s.icmpType.EqConst(uint64(e.ICMP.Type)))
		if e.ICMP.HasCode {
			pred = p.And(pred, s.icmpCode.EqConst(uint64(e.ICMP.Code)))
		}
	}
	return pred
}

// addrPred encodes a wildcard-mask address spec: every bit whose wildcard
// bit is clear must equal the pattern bit.
func (s *ACLSpace) addrPred(a ios.AddrSpec, vec bdd.Vec) bdd.Node {
	if a.Any {
		return bdd.True
	}
	p := s.Pool
	want := ios.AddrU32(a.Addr)
	pred := bdd.True
	for i := 0; i < 32; i++ {
		mask := uint32(1) << uint(31-i)
		if a.Wildcard&mask != 0 {
			continue
		}
		if want&mask != 0 {
			pred = p.And(pred, vec.Bit(i))
		} else {
			pred = p.And(pred, p.Not(vec.Bit(i)))
		}
	}
	return pred
}

func (s *ACLSpace) portPred(ps ios.PortSpec, vec bdd.Vec) bdd.Node {
	p := s.Pool
	switch ps.Op {
	case ios.PortNone:
		return bdd.True
	case ios.PortEq:
		return vec.EqConst(uint64(ps.Lo))
	case ios.PortNeq:
		return p.Not(vec.EqConst(uint64(ps.Lo)))
	case ios.PortLt:
		if ps.Lo == 0 {
			return bdd.False
		}
		return vec.LeqConst(uint64(ps.Lo) - 1)
	case ios.PortGt:
		if ps.Lo == 0xFFFF {
			return bdd.False
		}
		return vec.GeqConst(uint64(ps.Lo) + 1)
	case ios.PortRange:
		return vec.InRange(uint64(ps.Lo), uint64(ps.Hi))
	}
	return bdd.False
}

// FirstMatch returns per-entry first-match regions plus the final
// matched-by-nothing region (implicit deny).
func (s *ACLSpace) FirstMatch(acl *ios.ACL) []bdd.Node {
	p := s.Pool
	out := make([]bdd.Node, 0, len(acl.Entries)+1)
	notPrev := bdd.True
	for _, e := range acl.Entries {
		pred := s.ACEPred(e)
		out = append(out, p.And(notPrev, pred))
		notPrev = p.And(notPrev, p.Not(pred))
	}
	out = append(out, notPrev)
	return out
}

// PermitSet returns the BDD of packets the ACL permits.
func (s *ACLSpace) PermitSet(acl *ios.ACL) bdd.Node {
	p := s.Pool
	permitted := bdd.False
	notPrev := bdd.True
	for _, e := range acl.Entries {
		pred := s.ACEPred(e)
		if e.Permit {
			permitted = p.Or(permitted, p.And(notPrev, pred))
		}
		notPrev = p.And(notPrev, p.Not(pred))
	}
	return permitted
}

// EncodePacket renders a concrete packet as a total assignment vector.
func (s *ACLSpace) EncodePacket(pk packet.Packet) []bool {
	v := make([]bool, s.Pool.NumVars())
	asg := map[int]bool{}
	bdd.EncodeVec(asg, s.offProto, widthProto, uint64(pk.Protocol))
	bdd.EncodeVec(asg, s.offSrc, widthIP, uint64(ios.AddrU32(pk.Src)))
	bdd.EncodeVec(asg, s.offSrcPort, widthPort, uint64(pk.SrcPort))
	bdd.EncodeVec(asg, s.offDst, widthIP, uint64(ios.AddrU32(pk.Dst)))
	bdd.EncodeVec(asg, s.offDstPort, widthPort, uint64(pk.DstPort))
	bdd.EncodeVec(asg, s.offICMPType, 8, uint64(pk.ICMPType))
	bdd.EncodeVec(asg, s.offICMPCode, 8, uint64(pk.ICMPCode))
	for lvl, val := range asg {
		v[lvl] = val
	}
	v[s.offEst] = pk.Established
	return v
}

// Decode converts a (possibly partial) satisfying assignment into a concrete
// packet; don't-care bits default to zero.
func (s *ACLSpace) Decode(asg map[int]bool) packet.Packet {
	return packet.Packet{
		Protocol:    uint8(bdd.DecodeVec(asg, s.offProto, widthProto)),
		Src:         ios.U32ToAddr(uint32(bdd.DecodeVec(asg, s.offSrc, widthIP))),
		SrcPort:     uint16(bdd.DecodeVec(asg, s.offSrcPort, widthPort)),
		Dst:         ios.U32ToAddr(uint32(bdd.DecodeVec(asg, s.offDst, widthIP))),
		DstPort:     uint16(bdd.DecodeVec(asg, s.offDstPort, widthPort)),
		Established: asg[s.offEst],
		ICMPType:    uint8(bdd.DecodeVec(asg, s.offICMPType, 8)),
		ICMPCode:    uint8(bdd.DecodeVec(asg, s.offICMPCode, 8)),
	}
}

// Witness returns a concrete packet satisfying f; ok is false when f is
// unsatisfiable.
func (s *ACLSpace) Witness(f bdd.Node) (packet.Packet, bool) {
	asg, ok := s.Pool.AnySat(f)
	if !ok {
		return packet.Packet{}, false
	}
	return s.Decode(asg), true
}
