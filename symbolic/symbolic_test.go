package symbolic

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
)

const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

func newPaperSpace(t *testing.T) (*RouteSpace, *ios.Config) {
	t.Helper()
	cfg := ios.MustParse(paperISPOut)
	s, err := NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, cfg
}

func TestStanzaPredWitness(t *testing.T) {
	s, cfg := newPaperSpace(t)
	rm := cfg.RouteMaps["ISP_OUT"]
	ev := policy.NewEvaluator(cfg)
	for i, st := range rm.Stanzas {
		pred, err := s.StanzaPred(cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		r, ok, err := s.Witness(pred)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("stanza %d unsatisfiable", i)
		}
		matches, err := ev.StanzaMatches(st, r)
		if err != nil {
			t.Fatal(err)
		}
		if !matches {
			t.Errorf("stanza %d witness %s does not match concretely", i, r.Network)
		}
	}
}

func TestFirstMatchPartition(t *testing.T) {
	s, cfg := newPaperSpace(t)
	rm := cfg.RouteMaps["ISP_OUT"]
	regions, err := s.FirstMatch(cfg, rm)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != len(rm.Stanzas)+1 {
		t.Fatalf("got %d regions", len(regions))
	}
	p := s.Pool
	// Disjoint.
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if p.And(regions[i], regions[j]) != bdd.False {
				t.Errorf("regions %d and %d overlap", i, j)
			}
		}
	}
	// Exhaustive.
	all := bdd.False
	for _, r := range regions {
		all = p.Or(all, r)
	}
	if all != bdd.True {
		t.Error("regions do not cover the space")
	}
}

func TestFirstMatchAgreesWithEvaluator(t *testing.T) {
	s, cfg := newPaperSpace(t)
	rm := cfg.RouteMaps["ISP_OUT"]
	regions, err := s.FirstMatch(cfg, rm)
	if err != nil {
		t.Fatal(err)
	}
	ev := policy.NewEvaluator(cfg)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		r := testgen.Route(rng)
		v, err := ev.EvalRouteMap(rm, r)
		if err != nil {
			t.Fatal(err)
		}
		wantRegion := v.Index
		if wantRegion == policy.ImplicitDeny {
			wantRegion = len(regions) - 1
		}
		vec := s.EncodeRoute(r)
		for ri, reg := range regions {
			got := s.Pool.Eval(reg, vec)
			if got != (ri == wantRegion) {
				t.Fatalf("route %s: region %d = %v, evaluator chose %d", r.Network, ri, got, v.Index)
			}
		}
	}
}

// TestQuickConcreteSymbolicAgreement is the central lockstep property:
// random configs, random routes, StanzaMatches ⇔ StanzaPred.
func TestQuickConcreteSymbolicAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		cfg := testgen.Config(rng, "RM", 4)
		s, err := NewRouteSpace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev := policy.NewEvaluator(cfg)
		rm := cfg.RouteMaps["RM"]
		for i := 0; i < 40; i++ {
			r := testgen.Route(rng)
			vec := s.EncodeRoute(r)
			for si, st := range rm.Stanzas {
				concrete, err := ev.StanzaMatches(st, r)
				if err != nil {
					t.Fatal(err)
				}
				pred, err := s.StanzaPred(cfg, st)
				if err != nil {
					t.Fatal(err)
				}
				if sym := s.Pool.Eval(pred, vec); sym != concrete {
					t.Fatalf("trial %d stanza %d route %s:\nconcrete=%v symbolic=%v\nconfig:\n%s\nroute:\n%s",
						trial, si, r.Network, concrete, sym, cfg.Print(), r)
				}
			}
		}
	}
}

func TestWitnessRoundTrip(t *testing.T) {
	s, cfg := newPaperSpace(t)
	// Witness of (matches D1 prefix list) decodes to a route that concretely
	// matches, and re-encodes to satisfy the predicate.
	pred := s.PrefixListPred(cfg.PrefixLists["D1"])
	r, ok, err := s.Witness(pred)
	if err != nil || !ok {
		t.Fatalf("witness: %v %v", ok, err)
	}
	if !policy.PrefixListPermits(cfg.PrefixLists["D1"], r) {
		t.Errorf("witness %s not permitted concretely", r.Network)
	}
	if !s.Pool.Eval(pred, s.EncodeRoute(r)) {
		t.Error("witness does not re-encode into predicate")
	}
}

func TestWitnessesDistinctAndBounded(t *testing.T) {
	s, cfg := newPaperSpace(t)
	pred := s.PrefixListPred(cfg.PrefixLists["D1"])
	ws, err := s.Witnesses(pred, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 || len(ws) > 5 {
		t.Fatalf("got %d witnesses", len(ws))
	}
	for _, w := range ws {
		if !policy.PrefixListPermits(cfg.PrefixLists["D1"], w) {
			t.Errorf("witness %s not permitted", w.Network)
		}
	}
}

func TestDefaultsInDecode(t *testing.T) {
	s, _ := newPaperSpace(t)
	// A predicate placing no constraint on local-pref or next-hop should
	// decode with Cisco defaults.
	r, ok, err := s.Witness(bdd.True)
	if err != nil || !ok {
		t.Fatal("trivial witness failed")
	}
	if r.LocalPref != 100 {
		t.Errorf("default local-pref = %d, want 100", r.LocalPref)
	}
	if r.NextHop.String() != "0.0.0.1" {
		t.Errorf("default next-hop = %s", r.NextHop)
	}
}

func TestOutputEqualDenyCases(t *testing.T) {
	s, cfg := newPaperSpace(t)
	denySt := cfg.RouteMaps["ISP_OUT"].Stanzas[0]   // deny
	permitSt := cfg.RouteMaps["ISP_OUT"].Stanzas[2] // permit
	eq, err := s.OutputEqual(nil, nil)
	if err != nil || eq != bdd.True {
		t.Error("implicit-deny vs implicit-deny should be True")
	}
	eq, err = s.OutputEqual(denySt, nil)
	if err != nil || eq != bdd.True {
		t.Error("deny vs implicit-deny should be True")
	}
	eq, err = s.OutputEqual(permitSt, nil)
	if err != nil || eq != bdd.False {
		t.Error("permit vs deny should be False")
	}
}

func TestOutputEqualSetMetric(t *testing.T) {
	cfg := ios.MustParse(`route-map A permit 10
 set metric 55
route-map B permit 10
`)
	s, err := NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.RouteMaps["A"].Stanzas[0]
	b := cfg.RouteMaps["B"].Stanzas[0]
	eq, err := s.OutputEqual(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs differ exactly where input MED != 55.
	r55 := route.New("9.0.0.0/8")
	r55.MED = 55
	if !s.Pool.Eval(eq, s.EncodeRoute(r55)) {
		t.Error("routes with MED 55 should be equal under both stanzas")
	}
	r0 := route.New("9.0.0.0/8")
	if s.Pool.Eval(eq, s.EncodeRoute(r0)) {
		t.Error("routes with MED 0 should differ")
	}
	// Same constant on both sides → True.
	eq2, _ := s.OutputEqual(a, a)
	if eq2 != bdd.True {
		t.Error("stanza vs itself should be identically equal")
	}
}

func TestOutputEqualCommunities(t *testing.T) {
	cfg := ios.MustParse(`route-map A permit 10
 set community 9:9 additive
route-map B permit 10
route-map C permit 10
 set community 9:9
`)
	s, err := NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.RouteMaps["A"].Stanzas[0] // additive 9:9
	b := cfg.RouteMaps["B"].Stanzas[0] // no-op
	c := cfg.RouteMaps["C"].Stanzas[0] // replace with {9:9}
	eqAB, err := s.OutputEqual(a, b)
	if err != nil {
		t.Fatal(err)
	}
	has := route.New("9.0.0.0/8").WithCommunities("9:9")
	hasNot := route.New("9.0.0.0/8").WithCommunities("300:3")
	if !s.Pool.Eval(eqAB, s.EncodeRoute(has)) {
		t.Error("route already tagged 9:9: additive vs no-op should agree")
	}
	if s.Pool.Eval(eqAB, s.EncodeRoute(hasNot)) {
		t.Error("route without 9:9: additive vs no-op should differ")
	}
	eqAC, err := s.OutputEqual(a, c)
	if err != nil {
		t.Fatal(err)
	}
	only99 := route.New("9.0.0.0/8").WithCommunities("9:9")
	if !s.Pool.Eval(eqAC, s.EncodeRoute(only99)) {
		t.Error("input {9:9}: additive and replace agree")
	}
	extra := route.New("9.0.0.0/8").WithCommunities("9:9", "300:3")
	if s.Pool.Eval(eqAC, s.EncodeRoute(extra)) {
		t.Error("input {9:9,300:3}: additive keeps 300:3, replace drops it")
	}
}

// TestQuickOutputEqualAgreesWithConcrete: whenever OutputEqual says equal at
// the abstraction, concrete application of the two set lists to the route
// produces attribute-identical results (soundness of the abstraction for
// equality claims over routes representable in the universe).
func TestQuickOutputEqualAgreesWithConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		cfg := testgen.Config(rng, "RM", 3)
		s, err := NewRouteSpace(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rm := cfg.RouteMaps["RM"]
		var permits []*ios.Stanza
		for _, st := range rm.Stanzas {
			if st.Permit {
				permits = append(permits, st)
			}
		}
		if len(permits) < 2 {
			continue
		}
		a, b := permits[0], permits[1]
		eq, err := s.OutputEqual(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			r := testgen.Route(rng)
			outA := policy.ApplySets(a.Sets, r)
			outB := policy.ApplySets(b.Sets, r)
			symEq := s.Pool.Eval(eq, s.EncodeRoute(r))
			conEq := outA.Equal(outB)
			if symEq != conEq {
				t.Fatalf("trial %d: symbolic eq=%v concrete eq=%v\nroute:\n%s\nsetsA=%v setsB=%v",
					trial, symEq, conEq, r, a.Sets, b.Sets)
			}
		}
	}
}
