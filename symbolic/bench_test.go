package symbolic

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
)

func benchConfig() *ios.Config {
	return ios.MustParse(`ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23
route-map ISP_OUT permit 10
 match community D2
 match ip address prefix-list D3
 set metric 55
route-map ISP_OUT deny 20
 match as-path D0
route-map ISP_OUT deny 30
 match ip address prefix-list D1
route-map ISP_OUT permit 40
 match local-preference 300
`)
}

// BenchmarkNewRouteSpace measures universe construction (atomic predicates +
// variable allocation).
func BenchmarkNewRouteSpace(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := NewRouteSpace(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFirstMatch measures first-match region computation for a 4-stanza
// route map.
func BenchmarkFirstMatch(b *testing.B) {
	cfg := benchConfig()
	s, err := NewRouteSpace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rm := cfg.RouteMaps["ISP_OUT"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FirstMatch(cfg, rm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeRoute measures concrete-route encoding (used by the
// lockstep property tests and witness confirmation).
func BenchmarkEncodeRoute(b *testing.B) {
	cfg := benchConfig()
	s, err := NewRouteSpace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r := testgen.Route(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.EncodeRoute(r)
	}
}

// BenchmarkWitness measures model extraction + decoding to a concrete route.
func BenchmarkWitness(b *testing.B) {
	cfg := benchConfig()
	s, err := NewRouteSpace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pred, err := s.StanzaPred(cfg, cfg.RouteMaps["ISP_OUT"].Stanzas[0])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Witness(pred); err != nil || !ok {
			b.Fatal("witness failed")
		}
	}
}

// BenchmarkACLFirstMatch measures header-space region computation for ACLs.
func BenchmarkACLFirstMatch(b *testing.B) {
	cfg := ios.MustParse(`ip access-list extended EDGE
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 80
 deny udp 10.0.0.0 0.0.0.255 any
 permit tcp any any established
 deny ip any any
`)
	acl := cfg.ACLs["EDGE"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewACLSpace()
		_ = s.FirstMatch(acl)
	}
}
