package symbolic

import (
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
)

// OutputEqual returns the BDD of input routes on which the visible behaviour
// of stanza a equals that of stanza b: both deny, or both permit and produce
// attribute-equal output routes. A nil stanza stands for the implicit deny.
//
// Communities are compared at the atomic-predicate abstraction (which atom
// classes are inhabited); callers confirm candidate differences with the
// concrete evaluator, so the abstraction can only cost extra search, never
// wrong answers.
func (s *RouteSpace) OutputEqual(a, b *ios.Stanza) (bdd.Node, error) {
	aDenies := a == nil || !a.Permit
	bDenies := b == nil || !b.Permit
	switch {
	case aDenies && bDenies:
		return bdd.True, nil
	case aDenies != bDenies:
		return bdd.False, nil
	}
	p := s.Pool
	eq := bdd.True
	eq = p.And(eq, s.attrEqual(attrOut(a.Sets, attrMED), attrOut(b.Sets, attrMED), s.med))
	eq = p.And(eq, s.attrEqual(attrOut(a.Sets, attrLP), attrOut(b.Sets, attrLP), s.lp))
	eq = p.And(eq, s.attrEqual(attrOut(a.Sets, attrTag), attrOut(b.Sets, attrTag), s.tag))
	eq = p.And(eq, s.attrEqual(attrOut(a.Sets, attrWeight), attrOut(b.Sets, attrWeight), s.weight))
	eq = p.And(eq, s.attrEqual(attrOut(a.Sets, attrNH), attrOut(b.Sets, attrNH), s.nh))
	commEq, err := s.communitiesEqual(a.Sets, b.Sets)
	if err != nil {
		return bdd.False, err
	}
	return p.And(eq, commEq), nil
}

type attrKind int

const (
	attrMED attrKind = iota
	attrLP
	attrTag
	attrWeight
	attrNH
)

// attrVal is the symbolic output value of one scalar attribute: either a
// constant (some set clause assigned it) or the input field unchanged.
type attrVal struct {
	isConst bool
	c       uint64
}

// attrOut folds the set clauses for one attribute; the last assignment wins.
func attrOut(sets []ios.SetClause, kind attrKind) attrVal {
	out := attrVal{}
	for _, s := range sets {
		switch s := s.(type) {
		case ios.SetMetric:
			if kind == attrMED {
				out = attrVal{isConst: true, c: uint64(s.Value)}
			}
		case ios.SetLocalPref:
			if kind == attrLP {
				out = attrVal{isConst: true, c: uint64(s.Value)}
			}
		case ios.SetTag:
			if kind == attrTag {
				out = attrVal{isConst: true, c: uint64(s.Value)}
			}
		case ios.SetWeight:
			if kind == attrWeight {
				out = attrVal{isConst: true, c: uint64(s.Value)}
			}
		case ios.SetNextHop:
			if kind == attrNH {
				out = attrVal{isConst: true, c: uint64(ios.AddrU32(s.Addr))}
			}
		}
	}
	return out
}

// attrEqual returns the BDD of inputs on which the two symbolic outputs
// coincide.
func (s *RouteSpace) attrEqual(a, b attrVal, vec bdd.Vec) bdd.Node {
	switch {
	case a.isConst && b.isConst:
		if a.c == b.c {
			return bdd.True
		}
		return bdd.False
	case a.isConst:
		return vec.EqConst(a.c)
	case b.isConst:
		return vec.EqConst(b.c)
	default:
		return bdd.True // both pass the input through
	}
}

// communitiesEqual compares the output community sets at the atom level.
// Each side's output inhabitation of atom i is one of: the input variable
// (no set clause), a constant (replace), or input ∨ constant (additive).
func (s *RouteSpace) communitiesEqual(a, b []ios.SetClause) (bdd.Node, error) {
	p := s.Pool
	eq := bdd.True
	for i := 0; i < s.commAtoms.NumAtoms(); i++ {
		av, err := s.commAtomOut(a, i)
		if err != nil {
			return bdd.False, err
		}
		bv, err := s.commAtomOut(b, i)
		if err != nil {
			return bdd.False, err
		}
		eq = p.And(eq, p.Iff(av, bv))
	}
	return eq, nil
}

// commAtomOut returns the BDD-valued output inhabitation of community atom
// ai after applying the stanza's set clauses in order.
func (s *RouteSpace) commAtomOut(sets []ios.SetClause, ai int) (bdd.Node, error) {
	p := s.Pool
	cur := p.Var(s.offCommAtoms + ai) // input inhabitation
	for _, sc := range sets {
		set, ok := sc.(ios.SetCommunity)
		if !ok {
			continue
		}
		inSet, err := s.atomInLiterals(ai, set.Communities)
		if err != nil {
			return bdd.False, err
		}
		if set.Additive {
			if inSet {
				cur = bdd.True
			}
		} else {
			if inSet {
				cur = bdd.True
			} else {
				cur = bdd.False
			}
		}
	}
	return cur, nil
}

// atomInLiterals reports whether atom ai is one of the singleton atoms of the
// given community literals.
func (s *RouteSpace) atomInLiterals(ai int, lits []string) (bool, error) {
	for _, lit := range lits {
		pi := s.commAtoms.PatternIndex(exactCommunityPattern(lit))
		if pi < 0 {
			return false, &missingLiteralError{lit}
		}
		if s.commAtoms.Atoms[ai].InLang[pi] {
			return true, nil
		}
	}
	return false, nil
}

type missingLiteralError struct{ lit string }

func (e *missingLiteralError) Error() string {
	return "symbolic: set-community literal " + e.lit + " not in universe (config not passed to NewRouteSpace?)"
}
