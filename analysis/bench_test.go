package analysis

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/symbolic"
)

// BenchmarkRouteMapOverlaps measures pairwise overlap detection on random
// 6-stanza route maps.
func BenchmarkRouteMapOverlaps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := testgen.Config(rng, "RM", 6)
	s, err := symbolic.NewRouteSpace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RouteMapOverlaps(s, cfg, cfg.RouteMaps["RM"]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACLOverlaps measures pairwise ACL conflict detection.
func BenchmarkACLOverlaps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := testgen.ACL(rng, "A", 12)
	s := symbolic.NewACLSpace()
	acl := cfg.ACLs["A"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ACLOverlaps(s, acl)
	}
}

// BenchmarkCompareRandomMaps measures full differential comparison between
// two random route maps sharing one universe.
func BenchmarkCompareRandomMaps(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cfgA := testgen.Config(rng, "RM", 4)
	cfgB := testgen.Config(rng, "RM", 4)
	s, err := symbolic.NewRouteSpace(cfgA, cfgB)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompareRouteMaps(s, cfgA, cfgA.RouteMaps["RM"], cfgB, cfgB.RouteMaps["RM"], 3); err != nil {
			b.Fatal(err)
		}
	}
}
