package analysis

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/symbolic"
)

// Figure 2(a): the new stanza inserted at the top of ISP_OUT.
const figure2a = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23
route-map ISP_OUT permit 10
 match community D2
 match ip address prefix-list D3
 set metric 55
route-map ISP_OUT deny 20
 match as-path D0
route-map ISP_OUT deny 30
 match ip address prefix-list D1
route-map ISP_OUT permit 40
 match local-preference 300
`

// Figure 2(b): the new stanza inserted at the bottom.
const figure2b = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
ip community-list expanded D2 permit _300:3_
ip prefix-list D3 seq 10 permit 100.0.0.0/16 le 23
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
route-map ISP_OUT permit 40
 match community D2
 match ip address prefix-list D3
 set metric 55
`

func spacesFor(t *testing.T, texts ...string) (*symbolic.RouteSpace, []*ios.Config) {
	t.Helper()
	cfgs := make([]*ios.Config, len(texts))
	for i, txt := range texts {
		cfgs[i] = ios.MustParse(txt)
	}
	s, err := symbolic.NewRouteSpace(cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return s, cfgs
}

// TestPaperDifferentialExample reproduces §2.2: comparing top vs bottom
// insertion yields a differential route that the top placement permits with
// metric 55 (OPTION 1) and the bottom placement denies (OPTION 2).
func TestPaperDifferentialExample(t *testing.T) {
	s, cfgs := spacesFor(t, figure2a, figure2b)
	diffs, err := CompareRouteMaps(s, cfgs[0], cfgs[0].RouteMaps["ISP_OUT"], cfgs[1], cfgs[1].RouteMaps["ISP_OUT"], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) == 0 {
		t.Fatal("no differential example found; the paper's example requires one")
	}
	// At least one diff must be the paper's shape: permitted with metric 55
	// by (a), denied by (b).
	found := false
	for _, d := range diffs {
		if d.VerdictA.Permit && !d.VerdictB.Permit && d.VerdictA.Output.MED == 55 {
			found = true
			// The differential route must match the new stanza (prefix in
			// 100.0.0.0/16 le 23 with community 300:3) and an original deny.
			if !d.Input.HasCommunity(route.MustParseCommunity("300:3")) {
				t.Errorf("differential route lacks community 300:3: %s", d.Input)
			}
			if d.Input.Network.Bits() < 16 || d.Input.Network.Bits() > 23 {
				t.Errorf("differential route length %d outside [16,23]", d.Input.Network.Bits())
			}
		}
	}
	if !found {
		t.Errorf("no OPTION1/OPTION2-shaped diff among %d diffs", len(diffs))
	}
}

func TestCompareEqualMapsFindsNothing(t *testing.T) {
	s, cfgs := spacesFor(t, figure2a, figure2a)
	eq, err := EquivalentRouteMaps(s, cfgs[0], cfgs[0].RouteMaps["ISP_OUT"], cfgs[1], cfgs[1].RouteMaps["ISP_OUT"])
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("identical maps reported different")
	}
}

// TestQuickCompareSoundness: every reported diff is confirmed by construction;
// additionally, when CompareRouteMaps reports equivalence, random probing
// must not find a counterexample.
func TestQuickCompareSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		cfgA := testgen.Config(rng, "RM", 3)
		cfgB := testgen.Config(rng, "RM", 3)
		s, err := symbolic.NewRouteSpace(cfgA, cfgB)
		if err != nil {
			t.Fatal(err)
		}
		rmA, rmB := cfgA.RouteMaps["RM"], cfgB.RouteMaps["RM"]
		diffs, err := CompareRouteMaps(s, cfgA, rmA, cfgB, rmB, 3)
		if err != nil {
			t.Fatal(err)
		}
		evA, evB := policy.NewEvaluator(cfgA), policy.NewEvaluator(cfgB)
		if len(diffs) == 0 {
			// Equivalent per the analysis: random probes must agree.
			for i := 0; i < 200; i++ {
				r := testgen.Route(rng)
				va, err := evA.EvalRouteMap(rmA, r)
				if err != nil {
					t.Fatal(err)
				}
				vb, err := evB.EvalRouteMap(rmB, r)
				if err != nil {
					t.Fatal(err)
				}
				if !VerdictsEqual(va, vb) {
					t.Fatalf("trial %d: claimed equivalent, but %s differs\nA:\n%s\nB:\n%s",
						trial, r.Network, cfgA.Print(), cfgB.Print())
				}
			}
		}
		for _, d := range diffs {
			va, _ := evA.EvalRouteMap(rmA, d.Input)
			vb, _ := evB.EvalRouteMap(rmB, d.Input)
			if VerdictsEqual(va, vb) {
				t.Fatalf("trial %d: reported diff is not a diff", trial)
			}
		}
	}
}

func TestSearchRouteMap(t *testing.T) {
	s, cfgs := spacesFor(t, figure2a)
	cfg := cfgs[0]
	rm := cfg.RouteMaps["ISP_OUT"]
	// Find a permitted route: must exist (stanza 10 or 40).
	r, ok, err := SearchRouteMap(s, cfg, rm, bdd.True, true)
	if err != nil || !ok {
		t.Fatalf("no permitted route found: %v", err)
	}
	ev := policy.NewEvaluator(cfg)
	v, _ := ev.EvalRouteMap(rm, r)
	if !v.Permit {
		t.Errorf("witness %s not permitted", r.Network)
	}
	// Find a denied route.
	r, ok, err = SearchRouteMap(s, cfg, rm, bdd.True, false)
	if err != nil || !ok {
		t.Fatalf("no denied route found: %v", err)
	}
	v, _ = ev.EvalRouteMap(rm, r)
	if v.Permit {
		t.Errorf("witness %s not denied", r.Network)
	}
}

func TestSearchRouteMapWithConstraint(t *testing.T) {
	s, cfgs := spacesFor(t, figure2a)
	cfg := cfgs[0]
	rm := cfg.RouteMaps["ISP_OUT"]
	// Constrain to the new stanza's own match: permitted witnesses must then
	// carry community 300:3.
	pred, err := s.StanzaPred(cfg, rm.Stanzas[0])
	if err != nil {
		t.Fatal(err)
	}
	r, ok, err := SearchRouteMap(s, cfg, rm, pred, true)
	if err != nil || !ok {
		t.Fatal("constrained search failed")
	}
	if !r.HasCommunity(route.MustParseCommunity("300:3")) {
		t.Errorf("witness %v lacks 300:3", r.Communities)
	}
}

func TestSearchACL(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 deny tcp any any eq 22
 permit tcp any any
`)
	s := symbolic.NewACLSpace()
	pk, ok := SearchACL(s, cfg.ACLs["A"], bdd.True, true)
	if !ok {
		t.Fatal("no permitted packet")
	}
	if v := policy.EvalACL(cfg.ACLs["A"], pk); !v.Permit {
		t.Errorf("witness %s not permitted", pk)
	}
	pk, ok = SearchACL(s, cfg.ACLs["A"], bdd.True, false)
	if !ok {
		t.Fatal("no denied packet")
	}
	if v := policy.EvalACL(cfg.ACLs["A"], pk); v.Permit {
		t.Errorf("witness %s not denied", pk)
	}
	// An all-permit ACL has no denied tcp/22 packet... but non-tcp packets
	// fall to implicit deny; constrain to the permit entry's space.
	pred := s.ACEPred(cfg.ACLs["A"].Entries[1])
	if _, ok := SearchACL(s, cfg.ACLs["A"], s.Pool.And(pred, s.Pool.Not(s.ACEPred(cfg.ACLs["A"].Entries[0]))), false); ok {
		t.Error("found denied packet inside the permit-only region")
	}
}

func TestRouteMapOverlaps(t *testing.T) {
	// ISP_OUT with the new stanza on top: the new stanza (community 300:3 ∧
	// 100.0.0.0/16 le 23) overlaps the as-path deny (any prefix) and the
	// local-pref permit, but not prefix-list D1.
	s, cfgs := spacesFor(t, figure2a)
	cfg := cfgs[0]
	overlaps, err := RouteMapOverlaps(s, cfg, cfg.RouteMaps["ISP_OUT"])
	if err != nil {
		t.Fatal(err)
	}
	pairSet := map[[2]int]RouteMapOverlap{}
	for _, o := range overlaps {
		pairSet[[2]int{o.I, o.J}] = o
	}
	if _, ok := pairSet[[2]int{0, 1}]; !ok {
		t.Error("new stanza should overlap as-path deny stanza")
	}
	if _, ok := pairSet[[2]int{0, 2}]; ok {
		t.Error("new stanza must not overlap prefix-list D1 stanza (disjoint prefix spaces)")
	}
	if o, ok := pairSet[[2]int{0, 3}]; !ok || o.Conflicting {
		t.Error("new stanza should overlap local-pref stanza, non-conflicting")
	}
	if o := pairSet[[2]int{0, 1}]; !o.Conflicting {
		t.Error("permit vs deny overlap should be conflicting")
	}
	// Witnesses genuinely match both stanzas.
	ev := policy.NewEvaluator(cfg)
	for _, o := range overlaps {
		mi, _ := ev.StanzaMatches(cfg.RouteMaps["ISP_OUT"].Stanzas[o.I], o.Witness)
		mj, _ := ev.StanzaMatches(cfg.RouteMaps["ISP_OUT"].Stanzas[o.J], o.Witness)
		if !mi || !mj {
			t.Errorf("overlap (%d,%d) witness does not match both stanzas", o.I, o.J)
		}
	}
}

func TestACLOverlapsAndStats(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 80
 deny ip any any
 permit udp 10.0.0.0 0.0.0.255 any
 deny udp 10.0.0.0 0.0.255.255 any
`)
	s := symbolic.NewACLSpace()
	acl := cfg.ACLs["A"]
	overlaps := ACLOverlaps(s, acl)
	get := func(i, j int) (ACLOverlap, bool) {
		for _, o := range overlaps {
			if o.I == i && o.J == j {
				return o, true
			}
		}
		return ACLOverlap{}, false
	}
	// (0,1): permit tcp host/host ⊂ deny ip any any → conflicting proper subset.
	o, ok := get(0, 1)
	if !ok || !o.Conflicting || !o.ProperSubset {
		t.Errorf("(0,1) = %+v, want conflicting proper subset", o)
	}
	// (2,3): permit udp 10.0.0/24 ⊂ deny udp 10.0/16 → conflicting subset.
	o, ok = get(2, 3)
	if !ok || !o.Conflicting || !o.ProperSubset {
		t.Errorf("(2,3) = %+v, want conflicting proper subset", o)
	}
	// (1,2): deny any ∧ permit udp overlap, entry 2 ⊂ entry 1.
	if o, ok = get(1, 2); !ok || !o.ProperSubset {
		t.Errorf("(1,2) = %+v, want proper subset", o)
	}
	stats := AnalyzeACL(s, acl)
	if stats.Entries != 4 || stats.Overlaps != len(overlaps) {
		t.Errorf("stats = %+v", stats)
	}
	if stats.NonTrivial >= stats.Conflicting {
		t.Errorf("all conflicts here are subset pairs: %+v", stats)
	}
}

func TestACLOverlapEqualEntriesNotProperSubset(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 permit tcp any any eq 80
 deny tcp any any eq 80
`)
	s := symbolic.NewACLSpace()
	overlaps := ACLOverlaps(s, cfg.ACLs["A"])
	if len(overlaps) != 1 {
		t.Fatalf("got %d overlaps", len(overlaps))
	}
	if overlaps[0].ProperSubset {
		t.Error("identical match conditions are not a *proper* subset pair")
	}
	if !overlaps[0].Conflicting {
		t.Error("permit/deny pair should conflict")
	}
}

func TestAnalyzeRouteMapStats(t *testing.T) {
	s, cfgs := spacesFor(t, figure2a)
	cfg := cfgs[0]
	st, err := AnalyzeRouteMap(s, cfg, cfg.RouteMaps["ISP_OUT"])
	if err != nil {
		t.Fatal(err)
	}
	if st.Stanzas != 4 || st.Overlaps == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestContinueMapsOverlapButRefuseComparison mirrors the paper's §3 stance:
// route maps using `continue` still get overlap measurement (actions are
// ignored), but verdict-based analyses reject them.
func TestContinueMapsOverlapButRefuseComparison(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
ip prefix-list TEN seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip address prefix-list ALL
 set metric 1
 continue
route-map RM permit 20
 match ip address prefix-list TEN
`)
	s, err := symbolic.NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := AnalyzeRouteMap(s, cfg, cfg.RouteMaps["RM"])
	if err != nil {
		t.Fatalf("overlap analysis must accept continue: %v", err)
	}
	if st.Overlaps != 1 {
		t.Errorf("overlaps = %d, want 1", st.Overlaps)
	}
	if _, err := CompareRouteMaps(s, cfg, cfg.RouteMaps["RM"], cfg, cfg.RouteMaps["RM"], 1); err == nil {
		t.Error("comparison must reject continue maps")
	}
	if _, _, err := SearchRouteMap(s, cfg, cfg.RouteMaps["RM"], bdd.True, true); err == nil {
		t.Error("search must reject continue maps")
	}
}
