// Package analysis provides the Batfish-equivalent analyses the paper's
// workflow depends on: searchRoutePolicies / searchFilters (find an input
// with a required behaviour), compareRoutePolicies (differential examples
// between two route maps), and the overlap measurements of Section 3.
package analysis

import (
	"fmt"

	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/symbolic"
)

// maxWitnessProbes bounds how many symbolic candidate models are concretely
// confirmed per region pair before giving up on that pair; the community
// abstraction can produce spurious candidates but never hides a real
// difference behind more than a few.
const maxWitnessProbes = 8

// ---------- searchRoutePolicies / searchFilters ----------

// PermitRegion returns the BDD of input routes the route map permits.
func PermitRegion(s *symbolic.RouteSpace, cfg *ios.Config, rm *ios.RouteMap) (bdd.Node, error) {
	regions, err := s.FirstMatch(cfg, rm)
	if err != nil {
		return bdd.False, err
	}
	p := s.Pool
	permitted := bdd.False
	for i, st := range rm.Stanzas {
		if st.Permit {
			permitted = p.Or(permitted, regions[i])
		}
	}
	return permitted, nil
}

// SearchRouteMap finds a route within constraint on which the route map's
// action equals wantPermit — the equivalent of Batfish's
// searchRoutePolicies. ok is false when no such route exists.
func SearchRouteMap(s *symbolic.RouteSpace, cfg *ios.Config, rm *ios.RouteMap, constraint bdd.Node, wantPermit bool) (route.Route, bool, error) {
	permitted, err := PermitRegion(s, cfg, rm)
	if err != nil {
		return route.Route{}, false, err
	}
	target := permitted
	if !wantPermit {
		target = s.Pool.Not(permitted)
	}
	return s.Witness(s.Pool.And(constraint, target))
}

// SearchACL finds a packet within constraint on which the ACL's action
// equals wantPermit — the equivalent of Batfish's searchFilters.
func SearchACL(s *symbolic.ACLSpace, acl *ios.ACL, constraint bdd.Node, wantPermit bool) (packet.Packet, bool) {
	target := s.PermitSet(acl)
	if !wantPermit {
		target = s.Pool.Not(target)
	}
	return s.Witness(s.Pool.And(constraint, target))
}

// ---------- compareRoutePolicies ----------

// Diff is one differential example: an input route on which the two route
// maps behave observably differently, with both concrete verdicts.
type Diff struct {
	Input    route.Route
	VerdictA policy.RouteVerdict
	VerdictB policy.RouteVerdict
}

// VerdictsEqual reports whether two concrete verdicts are observationally
// identical: both deny, or both permit with attribute-equal outputs.
func VerdictsEqual(a, b policy.RouteVerdict) bool {
	if a.Permit != b.Permit {
		return false
	}
	if !a.Permit {
		return true
	}
	return a.Output.Equal(b.Output)
}

// CompareRouteMaps finds up to maxDiffs inputs on which rmA (under cfgA) and
// rmB (under cfgB) behave differently — the equivalent of Batfish's
// compareRoutePolicies. Both configs must have been passed to the
// RouteSpace's constructor. Every returned diff is confirmed by the concrete
// evaluator.
func CompareRouteMaps(s *symbolic.RouteSpace, cfgA *ios.Config, rmA *ios.RouteMap, cfgB *ios.Config, rmB *ios.RouteMap, maxDiffs int) ([]Diff, error) {
	if maxDiffs <= 0 {
		maxDiffs = 1
	}
	fmA, err := s.FirstMatch(cfgA, rmA)
	if err != nil {
		return nil, err
	}
	fmB, err := s.FirstMatch(cfgB, rmB)
	if err != nil {
		return nil, err
	}
	evA := policy.NewEvaluator(cfgA)
	evB := policy.NewEvaluator(cfgB)
	p := s.Pool
	var diffs []Diff
	for i, ra := range fmA {
		for j, rb := range fmB {
			region := p.AndN(ra, rb, s.Valid)
			if region == bdd.False {
				continue
			}
			outEq, err := s.OutputEqual(stanzaAt(rmA, i), stanzaAt(rmB, j))
			if err != nil {
				return nil, err
			}
			diffRegion := p.Diff(region, outEq)
			if diffRegion == bdd.False {
				continue
			}
			d, found, err := confirmDiff(s, evA, rmA, evB, rmB, diffRegion)
			if err != nil {
				return nil, err
			}
			if found {
				diffs = append(diffs, d)
				if len(diffs) >= maxDiffs {
					return diffs, nil
				}
			}
		}
	}
	return diffs, nil
}

// stanzaAt returns the stanza for a first-match region index, or nil for the
// trailing implicit-deny region.
func stanzaAt(rm *ios.RouteMap, i int) *ios.Stanza {
	if i >= len(rm.Stanzas) {
		return nil
	}
	return rm.Stanzas[i]
}

// confirmDiff extracts candidate models from diffRegion and returns the first
// one whose concrete verdicts actually differ.
func confirmDiff(s *symbolic.RouteSpace, evA *policy.Evaluator, rmA *ios.RouteMap, evB *policy.Evaluator, rmB *ios.RouteMap, diffRegion bdd.Node) (Diff, bool, error) {
	witnesses, err := s.Witnesses(diffRegion, maxWitnessProbes)
	if err != nil {
		return Diff{}, false, err
	}
	for _, w := range witnesses {
		va, err := evA.EvalRouteMap(rmA, w)
		if err != nil {
			return Diff{}, false, err
		}
		vb, err := evB.EvalRouteMap(rmB, w)
		if err != nil {
			return Diff{}, false, err
		}
		if !VerdictsEqual(va, vb) {
			return Diff{Input: w, VerdictA: va, VerdictB: vb}, true, nil
		}
	}
	return Diff{}, false, nil
}

// EquivalentRouteMaps reports whether the two route maps are observationally
// identical on every input route.
func EquivalentRouteMaps(s *symbolic.RouteSpace, cfgA *ios.Config, rmA *ios.RouteMap, cfgB *ios.Config, rmB *ios.RouteMap) (bool, error) {
	diffs, err := CompareRouteMaps(s, cfgA, rmA, cfgB, rmB, 1)
	if err != nil {
		return false, err
	}
	return len(diffs) == 0, nil
}

// ---------- Overlap analyses (Section 3) ----------

// RouteMapOverlap is a pair of stanzas matched by at least one common route.
type RouteMapOverlap struct {
	I, J        int  // stanza indices, I < J
	Conflicting bool // the stanzas' actions differ (informational; §3 ignores it)
	Witness     route.Route
}

// RouteMapOverlaps returns every overlapping stanza pair of rm, per the
// paper's definition: two stanzas overlap when some route advertisement
// matches both (actions ignored).
func RouteMapOverlaps(s *symbolic.RouteSpace, cfg *ios.Config, rm *ios.RouteMap) ([]RouteMapOverlap, error) {
	preds := make([]bdd.Node, len(rm.Stanzas))
	for i, st := range rm.Stanzas {
		p, err := s.StanzaPred(cfg, st)
		if err != nil {
			return nil, err
		}
		preds[i] = p
	}
	var out []RouteMapOverlap
	for i := 0; i < len(preds); i++ {
		for j := i + 1; j < len(preds); j++ {
			both := s.Pool.AndN(preds[i], preds[j], s.Valid)
			if both == bdd.False {
				continue
			}
			w, ok, err := s.Witness(both)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			out = append(out, RouteMapOverlap{
				I: i, J: j,
				Conflicting: rm.Stanzas[i].Permit != rm.Stanzas[j].Permit,
				Witness:     w,
			})
		}
	}
	return out, nil
}

// ACLOverlap is a pair of ACL entries matched by at least one common packet.
type ACLOverlap struct {
	I, J         int
	Conflicting  bool // entry actions differ
	ProperSubset bool // one entry's match set strictly contains the other's
	Witness      packet.Packet
}

// ACLOverlaps returns every overlapping entry pair of the ACL, classifying
// each as conflicting (different actions on a shared packet) and/or a
// proper-subset pair (the "trivial" overlaps §3.2 separates out, e.g.
// `permit tcp host A host B` under `deny ip any any`).
func ACLOverlaps(s *symbolic.ACLSpace, acl *ios.ACL) []ACLOverlap {
	preds := make([]bdd.Node, len(acl.Entries))
	for i, e := range acl.Entries {
		preds[i] = s.ACEPred(e)
	}
	p := s.Pool
	var out []ACLOverlap
	for i := 0; i < len(preds); i++ {
		for j := i + 1; j < len(preds); j++ {
			both := p.And(preds[i], preds[j])
			if both == bdd.False {
				continue
			}
			pk, _ := s.Witness(both)
			iInJ := p.Diff(preds[i], preds[j]) == bdd.False
			jInI := p.Diff(preds[j], preds[i]) == bdd.False
			out = append(out, ACLOverlap{
				I: i, J: j,
				Conflicting:  acl.Entries[i].Permit != acl.Entries[j].Permit,
				ProperSubset: (iInJ || jInI) && !(iInJ && jInI),
				Witness:      pk,
			})
		}
	}
	return out
}

// ACLOverlapStats aggregates one ACL's overlap profile for the §3 tables.
type ACLOverlapStats struct {
	Name        string
	Entries     int
	Overlaps    int // all overlapping pairs
	Conflicting int // pairs with different actions
	NonTrivial  int // conflicting pairs that are not proper-subset pairs
}

// AnalyzeACL computes the aggregate overlap statistics for one ACL.
func AnalyzeACL(s *symbolic.ACLSpace, acl *ios.ACL) ACLOverlapStats {
	st := ACLOverlapStats{Name: acl.Name, Entries: len(acl.Entries)}
	for _, o := range ACLOverlaps(s, acl) {
		st.Overlaps++
		if o.Conflicting {
			st.Conflicting++
			if !o.ProperSubset {
				st.NonTrivial++
			}
		}
	}
	return st
}

// RouteMapOverlapStats aggregates one route map's overlap profile.
type RouteMapOverlapStats struct {
	Name        string
	Stanzas     int
	Overlaps    int
	Conflicting int
}

// AnalyzeRouteMap computes the aggregate overlap statistics for one route
// map. The route space must cover cfg.
func AnalyzeRouteMap(s *symbolic.RouteSpace, cfg *ios.Config, rm *ios.RouteMap) (RouteMapOverlapStats, error) {
	st := RouteMapOverlapStats{Name: rm.Name, Stanzas: len(rm.Stanzas)}
	overlaps, err := RouteMapOverlaps(s, cfg, rm)
	if err != nil {
		return st, fmt.Errorf("analysis: route-map %s: %w", rm.Name, err)
	}
	for _, o := range overlaps {
		st.Overlaps++
		if o.Conflicting {
			st.Conflicting++
		}
	}
	return st, nil
}
