package analysis

import (
	"testing"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/symbolic"
)

func TestSearchRouteMapMatching(t *testing.T) {
	cfg := ios.MustParse(figure2a)
	rm := cfg.RouteMaps["ISP_OUT"]
	ev := policy.NewEvaluator(cfg)

	// A permitted route carrying 300:3 under 100.0.0.0/16 exists (stanza 10).
	r, ok, err := SearchRouteMapMatching(cfg, rm, RouteQuery{
		PrefixWithin: "100.0.0.0/16",
		HasCommunity: []string{"300:3"},
	}, true)
	if err != nil || !ok {
		t.Fatalf("search failed: ok=%v err=%v", ok, err)
	}
	v, _ := ev.EvalRouteMap(rm, r)
	if !v.Permit || v.Output.MED != 55 {
		t.Errorf("witness verdict %+v", v)
	}
	if !r.HasCommunity(route.MustParseCommunity("300:3")) {
		t.Errorf("witness lacks community: %v", r.Communities)
	}

	// No permitted route exists with as-path ending in 32 and local-pref 100
	// (stanza 20 denies unless lp is 300 or the community/prefix stanza wins
	// — constrain away from both).
	lp := uint32(100)
	_, ok, err = SearchRouteMapMatching(cfg, rm, RouteQuery{
		ASPathRegex:  "_32$",
		LocalPref:    &lp,
		PrefixWithin: "50.0.0.0/8",
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("no such permitted route should exist")
	}
	// ...but a denied one does.
	r, ok, err = SearchRouteMapMatching(cfg, rm, RouteQuery{
		ASPathRegex:  "_32$",
		LocalPref:    &lp,
		PrefixWithin: "50.0.0.0/8",
	}, false)
	if err != nil || !ok {
		t.Fatalf("denied search failed: %v", err)
	}
	if v, _ := ev.EvalRouteMap(rm, r); v.Permit {
		t.Error("witness should be denied")
	}
}

func TestRouteQueryValidation(t *testing.T) {
	cfg := ios.MustParse(figure2a)
	rm := cfg.RouteMaps["ISP_OUT"]
	if _, _, err := SearchRouteMapMatching(cfg, rm, RouteQuery{PrefixWithin: "bogus"}, true); err == nil {
		t.Error("bad CIDR should fail")
	}
	if _, _, err := SearchRouteMapMatching(cfg, rm, RouteQuery{
		CommunityRegex: "_1_", HasCommunity: []string{"1:1"},
	}, true); err == nil {
		t.Error("conflicting community constraints should fail")
	}
	if _, _, err := SearchRouteMapMatching(cfg, rm, RouteQuery{
		HasCommunity: []string{"1:1", "2:2"},
	}, true); err == nil {
		t.Error("multi-literal HasCommunity should fail loudly")
	}
}

func TestSearchACLMatching(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 deny tcp any any eq 22
 permit tcp 10.0.0.0 0.0.0.255 any
 deny ip any any
`)
	acl := cfg.ACLs["A"]
	// A permitted tcp packet from 10.0.0.0/24 exists, but not to port 22.
	pk, ok, err := SearchACLMatching(acl, PacketQuery{Protocol: "tcp", Src: "10.0.0.0/24"}, true)
	if err != nil || !ok {
		t.Fatalf("search failed: %v", err)
	}
	if v := policy.EvalACL(acl, pk); !v.Permit {
		t.Errorf("witness %s not permitted", pk)
	}
	_, ok, err = SearchACLMatching(acl, PacketQuery{Protocol: "tcp", Src: "10.0.0.0/24", DstPort: "eq 22"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("port 22 is denied for everyone")
	}
	// Defaults: empty fields mean any.
	if _, ok, err := SearchACLMatching(acl, PacketQuery{}, false); err != nil || !ok {
		t.Errorf("some denied packet must exist: %v", err)
	}
}

func TestShadowedStanzas(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
ip prefix-list TEN seq 10 permit 10.0.0.0/8 le 32
route-map RM deny 10
 match ip address prefix-list ALL
route-map RM permit 20
 match ip address prefix-list TEN
route-map RM permit 30
 match local-preference 300
`)
	s, err := symbolic.NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadowed, err := ShadowedStanzas(s, cfg, cfg.RouteMaps["RM"])
	if err != nil {
		t.Fatal(err)
	}
	// Stanza 10 matches everything → 20 and 30 are dead.
	if len(shadowed) != 2 || shadowed[0] != 1 || shadowed[1] != 2 {
		t.Errorf("shadowed = %v, want [1 2]", shadowed)
	}
}

func TestShadowedACEs(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 deny tcp any any
 permit tcp 10.0.0.0 0.0.0.255 any eq 80
 permit udp any any
`)
	s := symbolic.NewACLSpace()
	shadowed := ShadowedACEs(s, cfg.ACLs["A"])
	if len(shadowed) != 1 || shadowed[0] != 1 {
		t.Errorf("shadowed = %v, want [1]", shadowed)
	}
}

func TestNoShadowsInPaperExample(t *testing.T) {
	cfg := ios.MustParse(figure2a)
	s, err := symbolic.NewRouteSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadowed, err := ShadowedStanzas(s, cfg, cfg.RouteMaps["ISP_OUT"])
	if err != nil {
		t.Fatal(err)
	}
	if len(shadowed) != 0 {
		t.Errorf("paper example has no dead stanzas, got %v", shadowed)
	}
}
