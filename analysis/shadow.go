package analysis

import (
	"github.com/clarifynet/clarify/bdd"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/symbolic"
)

// ShadowedStanzas returns the indices of route-map stanzas no route can ever
// reach: their first-match region is empty because earlier stanzas capture
// everything they match. Dead stanzas are a classic configuration smell and
// make insertion ambiguity strictly worse (the paper's disambiguator already
// skips them when probing).
func ShadowedStanzas(s *symbolic.RouteSpace, cfg *ios.Config, rm *ios.RouteMap) ([]int, error) {
	regions, err := s.FirstMatch(cfg, rm)
	if err != nil {
		return nil, err
	}
	var out []int
	for i := range rm.Stanzas {
		if s.Pool.AndN(regions[i], s.Valid) == bdd.False {
			out = append(out, i)
		}
	}
	return out, nil
}

// ShadowedACEs returns the indices of unreachable ACL entries.
func ShadowedACEs(s *symbolic.ACLSpace, acl *ios.ACL) []int {
	regions := s.FirstMatch(acl)
	var out []int
	for i := range acl.Entries {
		if regions[i] == bdd.False {
			out = append(out, i)
		}
	}
	return out
}
