package analysis

import (
	"fmt"
	"net/netip"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/spec"
	"github.com/clarifynet/clarify/symbolic"
)

// RouteQuery is a declarative constraint over routes for one-call searches:
// the query compiles to a symbolic predicate internally, so callers never
// touch BDDs. Zero-valued fields are unconstrained.
type RouteQuery struct {
	// PrefixWithin restricts the route's network to lie under this CIDR,
	// with length in [PrefixLenMin, PrefixLenMax] (0,0 = any length ≥ the
	// CIDR's own, up to 32).
	PrefixWithin string
	PrefixLenMin int
	PrefixLenMax int
	// HasCommunity lists literal communities that must all be present.
	HasCommunity []string
	// CommunityRegex requires some community to match this Cisco regex.
	CommunityRegex string
	// ASPathRegex requires the AS path to match this Cisco regex.
	ASPathRegex string
	// Exact attribute values; nil = unconstrained.
	LocalPref *uint32
	Metric    *uint32
	Tag       *uint32
}

// toSpec renders the query as a behavioural spec, reusing its compiled
// stanza machinery.
func (q RouteQuery) toSpec() (*spec.RouteMapSpec, error) {
	s := &spec.RouteMapSpec{Permit: true}
	if q.PrefixWithin != "" {
		lo, hi := q.PrefixLenMin, q.PrefixLenMax
		pc, err := parseCIDRBits(q.PrefixWithin)
		if err != nil {
			return nil, err
		}
		if lo == 0 {
			lo = pc
		}
		if hi == 0 {
			hi = 32
		}
		s.Prefix = []string{fmt.Sprintf("%s:%d-%d", q.PrefixWithin, lo, hi)}
	}
	switch {
	case q.CommunityRegex != "" && len(q.HasCommunity) > 0:
		return nil, fmt.Errorf("analysis: query cannot combine CommunityRegex and HasCommunity")
	case q.CommunityRegex != "":
		s.Community = "/" + q.CommunityRegex + "/"
	case len(q.HasCommunity) == 1:
		s.Community = q.HasCommunity[0]
	case len(q.HasCommunity) > 1:
		return nil, fmt.Errorf("analysis: HasCommunity supports one literal per query (compose with multiple searches)")
	}
	if q.ASPathRegex != "" {
		s.ASPath = "/" + q.ASPathRegex + "/"
	}
	s.LocalPref = q.LocalPref
	s.Metric = q.Metric
	s.Tag = q.Tag
	return s, nil
}

func parseCIDRBits(cidr string) (int, error) {
	pfx, err := netip.ParsePrefix(cidr)
	if err != nil {
		return 0, fmt.Errorf("analysis: query prefix %q: %v", cidr, err)
	}
	return pfx.Bits(), nil
}

// SearchRouteMapMatching finds a route satisfying the query on which the
// route map's action equals wantPermit — the one-call form of Batfish's
// searchRoutePolicies. ok is false when no such route exists.
func SearchRouteMapMatching(cfg *ios.Config, rm *ios.RouteMap, q RouteQuery, wantPermit bool) (route.Route, bool, error) {
	qs, err := q.toSpec()
	if err != nil {
		return route.Route{}, false, err
	}
	qcfg, qrm, err := qs.ToConfig("QUERY")
	if err != nil {
		return route.Route{}, false, err
	}
	space, err := symbolic.NewRouteSpace(cfg, qcfg)
	if err != nil {
		return route.Route{}, false, err
	}
	pred, err := space.StanzaPred(qcfg, qrm.Stanzas[0])
	if err != nil {
		return route.Route{}, false, err
	}
	return SearchRouteMap(space, cfg, rm, pred, wantPermit)
}

// PacketQuery is the ACL counterpart of RouteQuery. Fields use the spec
// notation: addresses are "any", a host IP in /32 form, or a CIDR; ports use
// IOS phrases ("eq 80", "range 100 200").
type PacketQuery struct {
	Protocol    string
	Src, Dst    string
	SrcPort     string
	DstPort     string
	Established bool
}

// SearchACLMatching finds a packet satisfying the query on which the ACL's
// action equals wantPermit — the one-call form of Batfish's searchFilters.
func SearchACLMatching(acl *ios.ACL, q PacketQuery, wantPermit bool) (packet.Packet, bool, error) {
	qs := &spec.ACLSpec{
		Permit:      true,
		Protocol:    orDefault(q.Protocol, "ip"),
		Src:         orDefault(q.Src, "any"),
		Dst:         orDefault(q.Dst, "any"),
		SrcPort:     q.SrcPort,
		DstPort:     q.DstPort,
		Established: q.Established,
	}
	ace, err := qs.ToACE()
	if err != nil {
		return packet.Packet{}, false, err
	}
	space := symbolic.NewACLSpace()
	pred := space.ACEPred(ace)
	pk, ok := SearchACL(space, acl, pred, wantPermit)
	return pk, ok, nil
}

func orDefault(v, d string) string {
	if v == "" {
		return d
	}
	return v
}
