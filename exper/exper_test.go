package exper

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// Scaled-down corpora keep tests fast; archetype fractions are preserved, so
// shape assertions transfer to full scale.
const (
	testCloudACLs  = 60
	testCloudRMs   = 80
	testCampusACLs = 150
	testCampusRMs  = 40
)

func TestCloudACLShape(t *testing.T) {
	agg := CloudACLExperiment(1, testCloudACLs)
	if agg.Examined != testCloudACLs {
		t.Fatalf("examined = %d", agg.Examined)
	}
	// Paper fractions: 69/237 ≈ 29% with ≥1 conflict, 48/237 ≈ 20% with >20.
	fracConflict := float64(agg.WithConflict) / float64(agg.Examined)
	fracHeavy := float64(agg.ConflictOver20) / float64(agg.Examined)
	if fracConflict < 0.20 || fracConflict > 0.40 {
		t.Errorf("conflicting fraction = %.2f, want ≈ 0.29", fracConflict)
	}
	if fracHeavy < 0.10 || fracHeavy > 0.30 {
		t.Errorf(">20 fraction = %.2f, want ≈ 0.20", fracHeavy)
	}
	// The giant edge ACL has over 100 conflicting pairs.
	if agg.MaxPairs <= 100 {
		t.Errorf("max pairs = %d, want > 100", agg.MaxPairs)
	}
}

func TestCloudRouteMapShape(t *testing.T) {
	agg, err := CloudRouteMapExperiment(1, testCloudRMs)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(agg.WithOverlap) / float64(agg.Examined)
	// Paper: 140/800 = 17.5%.
	if frac < 0.10 || frac > 0.28 {
		t.Errorf("overlap fraction = %.2f, want ≈ 0.175", frac)
	}
	if agg.Over20 == 0 {
		t.Error("expected at least one >20-overlap route-map at this scale")
	}
	if agg.Over20 > agg.WithOverlap {
		t.Error("inconsistent aggregate")
	}
}

func TestCampusACLShape(t *testing.T) {
	agg := CampusACLExperiment(1, testCampusACLs)
	pct := func(a, b int) float64 { return 100 * float64(a) / float64(b) }
	if got := pct(agg.WithConflict, agg.Examined); got < 30 || got > 46 {
		t.Errorf("%%conflicting = %.1f, want ≈ 37.7", got)
	}
	if got := pct(agg.WithNonTrivial, agg.Examined); got < 12 || got > 26 {
		t.Errorf("%%non-trivial = %.1f, want ≈ 18.6", got)
	}
	if got := pct(agg.ConflictOver20, agg.WithConflict); got < 15 || got > 40 {
		t.Errorf("%%>20-of-conflicting = %.1f, want ≈ 27", got)
	}
	if got := pct(agg.NonTrivialOver20, agg.WithNonTrivial); got < 5 || got > 30 {
		t.Errorf("%%>20-of-non-trivial = %.1f, want ≈ 16.3", got)
	}
	// Non-trivial is a strict subset of conflicting (subset pairs exist).
	if agg.WithNonTrivial >= agg.WithConflict {
		t.Errorf("non-trivial (%d) should be below conflicting (%d)", agg.WithNonTrivial, agg.WithConflict)
	}
}

func TestCampusRouteMapShape(t *testing.T) {
	agg, err := CampusRouteMapExperiment(1, testCampusRMs)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the two special maps overlap, like the paper's 2-of-169.
	if agg.WithOverlap != 2 {
		t.Errorf("with overlap = %d, want 2", agg.WithOverlap)
	}
	// The triplet: 3 overlapping pairs, 2 conflicting.
	if agg.MaxOverlaps != 3 || agg.MaxConflicting != 2 {
		t.Errorf("max = %d pairs / %d conflicting, want 3/2", agg.MaxOverlaps, agg.MaxConflicting)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := CloudACLExperiment(7, 40)
	b := CloudACLExperiment(7, 40)
	if a != b {
		t.Errorf("same seed should reproduce: %+v vs %+v", a, b)
	}
	c := CloudACLExperiment(8, 40)
	_ = c // different seeds may or may not differ in aggregates; only stability is required
}

func TestFigure4Driver(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure4(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4", "M", "R1", "R2", "reused-prefixes-mutually-invisible", "HOLDS"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Errorf("policy violations reported:\n%s", out)
	}
}

func TestQuestionComplexity(t *testing.T) {
	sizes := []int{1, 3, 7, 15}
	binary, linear, err := QuestionComplexity(sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range sizes {
		wantBinary := map[int]int{1: 1, 3: 2, 7: 3, 15: 4}[k]
		if binary[i].Questions != wantBinary {
			t.Errorf("k=%d: binary questions = %d, want %d", k, binary[i].Questions, wantBinary)
		}
		// Worst case for linear (bottom target): k questions.
		if linear[i].Questions != k {
			t.Errorf("k=%d: linear questions = %d, want %d", k, linear[i].Questions, k)
		}
	}
	var buf bytes.Buffer
	WriteQuestionTable(&buf, binary, linear)
	if !strings.Contains(buf.String(), "binary questions") {
		t.Error("table header missing")
	}
}

func TestTableWriters(t *testing.T) {
	var buf bytes.Buffer
	WriteCloudACLTable(&buf, CloudACLExperiment(1, 30))
	rm, err := CloudRouteMapExperiment(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	WriteCloudRMTable(&buf, rm)
	WriteCampusACLTable(&buf, CampusACLExperiment(1, 60))
	crm, err := CampusRouteMapExperiment(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	WriteCampusRMTable(&buf, crm)
	out := buf.String()
	for _, want := range []string{"237", "800", "11088", "169", "measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

func TestVerifyAblation(t *testing.T) {
	rows, err := VerifyAblation(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	shipped := 0
	for _, r := range rows {
		if !r.CorrectWithVerifier {
			t.Errorf("fault %v: verifier did not repair", r.Fault)
		}
		if r.AttemptsWithVerifier != 2 {
			t.Errorf("fault %v: attempts = %d, want 2", r.Fault, r.AttemptsWithVerifier)
		}
		if r.ShippedWrongWithout {
			shipped++
		}
	}
	if shipped == 0 {
		t.Error("without the verifier, at least some faults must ship")
	}
	var buf bytes.Buffer
	WriteVerifyAblation(&buf, rows)
	if !strings.Contains(buf.String(), "wrong-value") {
		t.Error("table missing fault names")
	}
}
