package exper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
)

// VerifyAblationRow is one fault kind's outcome with the verifier on and
// off.
type VerifyAblationRow struct {
	Fault llm.Fault
	// WithVerifier: attempts used (>1 means the loop caught and repaired the
	// fault) and whether the final stanza is correct.
	AttemptsWithVerifier int
	CorrectWithVerifier  bool
	// WithoutVerifier: whether the faulty stanza shipped into the config.
	ShippedWrongWithout bool
}

const ablationISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

const ablationPrompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

// VerifyAblation measures, per injected fault kind, what the verification
// loop buys: with the verifier the faulty first output is repaired on retry;
// without it the wrong stanza ships silently. (Syntax faults are an
// exception without the verifier only in that parsing itself fails — the
// pipeline always parses its own output.)
func VerifyAblation(ctx context.Context) ([]VerifyAblationRow, error) {
	faults := []llm.Fault{llm.FaultWrongValue, llm.FaultWidenMask, llm.FaultDropMatch, llm.FaultFlipAction, llm.FaultSyntax}
	var rows []VerifyAblationRow
	for _, fault := range faults {
		row := VerifyAblationRow{Fault: fault}

		// With verifier.
		s := &clarify.Session{
			Client:      llm.NewSimLLM(fault),
			Config:      ios.MustParse(ablationISPOut),
			RouteOracle: disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }),
		}
		res, err := s.Submit(ctx, ablationPrompt, "ISP_OUT")
		if err != nil {
			return nil, fmt.Errorf("exper: verify-on run for %v: %w", fault, err)
		}
		row.AttemptsWithVerifier = res.Attempts
		row.CorrectWithVerifier = strings.Contains(res.SnippetText, "set metric 55")

		// Without verifier.
		s = &clarify.Session{
			Client:           llm.NewSimLLM(fault),
			Config:           ios.MustParse(ablationISPOut),
			RouteOracle:      disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) { return true, nil }),
			SkipVerification: true,
		}
		res, err = s.Submit(ctx, ablationPrompt, "ISP_OUT")
		switch {
		case err == nil:
			row.ShippedWrongWithout = !correctSnippet(res.SnippetText)
		case errors.Is(err, clarify.ErrPunt):
			// Syntax faults still fail the parse step even without the
			// semantic verifier — only on the first attempt, then recover.
			row.ShippedWrongWithout = false
		default:
			return nil, fmt.Errorf("exper: verify-off run for %v: %w", fault, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// correctSnippet checks the §2.1 ground truth: a permitting stanza with
// metric 55, the le-23 bound and the community match.
func correctSnippet(text string) bool {
	return strings.Contains(text, "set metric 55") &&
		strings.Contains(text, "le 23") &&
		strings.Contains(text, "match community") &&
		strings.Contains(text, "route-map SET_METRIC permit")
}

// WriteVerifyAblation prints the ablation table.
func WriteVerifyAblation(w io.Writer, rows []VerifyAblationRow) {
	fmt.Fprintf(w, "verification ablation | fault        | verifier: attempts→correct | no verifier: wrong stanza shipped\n")
	for _, r := range rows {
		fmt.Fprintf(w, "                      | %-12s | %d→%-5v                   | %v\n",
			r.Fault, r.AttemptsWithVerifier, r.CorrectWithVerifier, r.ShippedWrongWithout)
	}
}
