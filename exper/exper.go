// Package exper contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation: the Section 3 overlap measurements
// over the synthetic cloud/campus corpora, the Figure 4 synthesis
// statistics, and the Section 4 question-complexity ablation.
package exper

import (
	"context"
	"fmt"
	"io"
	"math"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/evaltopo"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
	"github.com/clarifynet/clarify/symbolic"
	"github.com/clarifynet/clarify/workload"
)

// ACLAggregate summarizes the ACL overlap profile of a corpus (§3 rows).
type ACLAggregate struct {
	Examined int
	// WithConflict counts ACLs with ≥1 conflicting overlap (the paper's
	// notion of ACL overlap: different actions on a shared packet).
	WithConflict int
	// ConflictOver20 counts ACLs with >20 conflicting pairs.
	ConflictOver20 int
	// WithNonTrivial / NonTrivialOver20 discard proper-subset pairs
	// (§3.2's refined measurement).
	WithNonTrivial   int
	NonTrivialOver20 int
	// MaxPairs is the largest per-ACL conflicting-pair count (the paper's
	// ">100 pairs" edge ACL).
	MaxPairs int
}

// AnalyzeACLCorpus runs the overlap analysis over every ACL config.
func AnalyzeACLCorpus(cfgs []*ios.Config) ACLAggregate {
	agg := ACLAggregate{}
	space := symbolic.NewACLSpace()
	for _, cfg := range cfgs {
		for _, acl := range cfg.ACLs {
			st := analysis.AnalyzeACL(space, acl)
			agg.Examined++
			if st.Conflicting > 0 {
				agg.WithConflict++
			}
			if st.Conflicting > 20 {
				agg.ConflictOver20++
			}
			if st.NonTrivial > 0 {
				agg.WithNonTrivial++
			}
			if st.NonTrivial > 20 {
				agg.NonTrivialOver20++
			}
			if st.Conflicting > agg.MaxPairs {
				agg.MaxPairs = st.Conflicting
			}
		}
	}
	return agg
}

// RMAggregate summarizes the route-map overlap profile of a corpus.
type RMAggregate struct {
	Examined    int
	WithOverlap int
	Over20      int
	MaxOverlaps int
	// TripletDetail captures the campus special case: overlapping pair
	// count and conflicting count of the most-overlapping route-map.
	MaxConflicting int
}

// AnalyzeRouteMapCorpus runs the overlap analysis over every route-map
// config. Each config gets its own route space (mirroring per-policy
// analysis in the paper's Batfish extension).
func AnalyzeRouteMapCorpus(cfgs []*ios.Config) (RMAggregate, error) {
	agg := RMAggregate{}
	for _, cfg := range cfgs {
		space, err := symbolic.NewRouteSpace(cfg)
		if err != nil {
			return agg, err
		}
		for _, rm := range cfg.RouteMaps {
			st, err := analysis.AnalyzeRouteMap(space, cfg, rm)
			if err != nil {
				return agg, err
			}
			agg.Examined++
			if st.Overlaps > 0 {
				agg.WithOverlap++
			}
			if st.Overlaps > 20 {
				agg.Over20++
			}
			if st.Overlaps > agg.MaxOverlaps {
				agg.MaxOverlaps = st.Overlaps
				agg.MaxConflicting = st.Conflicting
			}
		}
	}
	return agg, nil
}

// ---------- §3 experiment drivers ----------

// CloudACLExperiment regenerates the §3.1 ACL measurement at the given scale
// (pass workload.CloudACLCount for the paper's full size).
func CloudACLExperiment(seed int64, n int) ACLAggregate {
	corpus := workload.Cloud(seed, n, 0)
	return AnalyzeACLCorpus(corpus.ACLConfigs)
}

// CloudRouteMapExperiment regenerates the §3.1 route-map measurement.
func CloudRouteMapExperiment(seed int64, n int) (RMAggregate, error) {
	corpus := workload.Cloud(seed, 0, n)
	return AnalyzeRouteMapCorpus(corpus.RouteMapConfigs)
}

// CampusACLExperiment regenerates the §3.2 ACL measurement.
func CampusACLExperiment(seed int64, n int) ACLAggregate {
	corpus := workload.Campus(seed, n, 0)
	return AnalyzeACLCorpus(corpus.ACLConfigs)
}

// CampusRouteMapExperiment regenerates the §3.2 route-map measurement.
func CampusRouteMapExperiment(seed int64, n int) (RMAggregate, error) {
	corpus := workload.Campus(seed, 0, n)
	return AnalyzeRouteMapCorpus(corpus.RouteMapConfigs)
}

// WriteCloudACLTable prints the §3.1 ACL row next to the paper's numbers.
func WriteCloudACLTable(w io.Writer, agg ACLAggregate) {
	fmt.Fprintf(w, "§3.1 cloud ACLs | examined   | ≥1 overlap | >20 overlaps | max pairs\n")
	fmt.Fprintf(w, "paper        | 237           | 69         | 48           | >100\n")
	fmt.Fprintf(w, "measured     | %-13d | %-10d | %-12d | %d\n",
		agg.Examined, agg.WithConflict, agg.ConflictOver20, agg.MaxPairs)
}

// WriteCloudRMTable prints the §3.1 route-map row.
func WriteCloudRMTable(w io.Writer, agg RMAggregate) {
	fmt.Fprintf(w, "§3.1 cloud route-maps | examined | with overlaps | >20 overlaps\n")
	fmt.Fprintf(w, "paper                 | 800      | 140           | 3\n")
	fmt.Fprintf(w, "measured              | %-8d | %-13d | %d\n",
		agg.Examined, agg.WithOverlap, agg.Over20)
}

// WriteCampusACLTable prints the §3.2 ACL row (percentages, like the paper).
func WriteCampusACLTable(w io.Writer, agg ACLAggregate) {
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	fmt.Fprintf(w, "§3.2 campus ACL | examined | %%conflicting | %%of-those>20 | %%non-trivial | %%of-those>20\n")
	fmt.Fprintf(w, "paper           | 11088    | 37.7         | 27.0         | 18.6         | 16.3\n")
	fmt.Fprintf(w, "measured        | %-8d | %-12.1f | %-12.1f | %-12.1f | %.1f\n",
		agg.Examined,
		pct(agg.WithConflict, agg.Examined),
		pct(agg.ConflictOver20, agg.WithConflict),
		pct(agg.WithNonTrivial, agg.Examined),
		pct(agg.NonTrivialOver20, agg.WithNonTrivial))
}

// WriteCampusRMTable prints the §3.2 route-map row.
func WriteCampusRMTable(w io.Writer, agg RMAggregate) {
	fmt.Fprintf(w, "§3.2 campus route-maps | examined | with overlaps | max pairs | conflicting-of-max\n")
	fmt.Fprintf(w, "paper                  | 169      | 2             | 3         | 2\n")
	fmt.Fprintf(w, "measured               | %-8d | %-13d | %-9d | %d\n",
		agg.Examined, agg.WithOverlap, agg.MaxOverlaps, agg.MaxConflicting)
}

// ---------- Figure 4 driver ----------

// Figure4 runs the §5 evaluation and prints the statistics table next to the
// paper's numbers, plus the five policy checks.
func Figure4(ctx context.Context, w io.Writer) error {
	stats, checks, _, err := evaltopo.RunEvaluation(ctx, func() llm.Client { return llm.NewSimLLM() })
	if err != nil {
		return err
	}
	paper := map[string][3]int{"M": {4, 9, 5}, "R1": {5, 12, 6}, "R2": {5, 12, 6}}
	fmt.Fprintf(w, "Figure 4: Router | #Route-maps (paper) | #LLM calls (paper) | #Disambiguation (paper)\n")
	for _, s := range stats {
		p := paper[s.Router]
		fmt.Fprintf(w, "           %-5s | %d (%d)               | %d (%d)             | %d (%d)\n",
			s.Router, s.RouteMaps, p[0], s.LLMCalls, p[1], s.Disambiguations, p[2])
	}
	fmt.Fprintf(w, "\nGlobal policy validation (§5):\n")
	for _, c := range checks {
		status := "HOLDS"
		if !c.Holds {
			status = "VIOLATED: " + c.Details
		}
		fmt.Fprintf(w, "  %-36s %s\n", c.Name, status)
	}
	return nil
}

// ---------- §4 question-complexity ablation ----------

// QuestionCount is one data point of the ablation: overlapping-rule count k
// versus questions asked by a strategy.
type QuestionCount struct {
	Overlaps  int
	Questions int
}

// QuestionComplexity measures, for each k in sizes, how many questions each
// strategy asks to place a new stanza into a route-map with k distinguishing
// overlaps, with the target at the worst-case position.
func QuestionComplexity(sizes []int) (binary, linear []QuestionCount, err error) {
	for _, k := range sizes {
		orig, snippet := overlapLadder(k)
		// Worst case for binary search: target at the bottom gap.
		target := orig.Clone()
		prepareTarget(target, snippet, k)
		runOne := func(strategy disambig.Strategy) (int, error) {
			user := disambig.NewSimUserRouteMap(target, "RM")
			res, err := disambig.InsertRouteMapStanzaStrategy(strategy, orig, "RM", snippet, "NEW", user)
			if err != nil {
				return 0, err
			}
			if len(res.Overlaps) != k {
				return 0, fmt.Errorf("exper: ladder(%d) produced %d overlaps", k, len(res.Overlaps))
			}
			return len(res.Questions), nil
		}
		qb, err := runOne(disambig.StrategyBinary)
		if err != nil {
			return nil, nil, err
		}
		ql, err := runOne(disambig.StrategyLinear)
		if err != nil {
			return nil, nil, err
		}
		binary = append(binary, QuestionCount{Overlaps: k, Questions: qb})
		linear = append(linear, QuestionCount{Overlaps: k, Questions: ql})
	}
	return binary, linear, nil
}

// overlapLadder builds a route-map with k stanzas that all distinguishably
// overlap a new community-matching stanza: stanza i matches exactly
// local-preference 101+i (so the first-match regions are disjoint and none
// is shadowed), and the new stanza sets a metric, so every placement is
// observably different.
func overlapLadder(k int) (orig, snippet *ios.Config) {
	orig = ios.NewConfig()
	rm := orig.AddRouteMap("RM")
	for i := 0; i < k; i++ {
		rm.Stanzas = append(rm.Stanzas, &ios.Stanza{
			Seq:     (i + 1) * 10,
			Permit:  true,
			Matches: []ios.Match{ios.MatchLocalPref{Value: uint32(101 + i)}},
		})
	}
	snippet = ios.MustParse(`ip community-list expanded NEW_C permit _77:7_
route-map NEW permit 10
 match community NEW_C
 set metric 999
`)
	return orig, snippet
}

// prepareTarget inserts the snippet stanza at the bottom gap of the ladder.
func prepareTarget(target *ios.Config, snippet *ios.Config, pos int) {
	target.AddCommunityList("NEW_C", true, ios.CommunityListEntry{Permit: true, Values: []string{"_77:7_"}})
	st := snippet.RouteMaps["NEW"].Stanzas[0].Clone()
	st.Matches = []ios.Match{ios.MatchCommunity{List: "NEW_C"}}
	target.RouteMaps["RM"].InsertStanza(pos, st)
}

// WriteQuestionTable prints the ablation series with the theoretical bound.
func WriteQuestionTable(w io.Writer, binary, linear []QuestionCount) {
	fmt.Fprintf(w, "§4 ablation: overlaps k | binary questions | ⌈log2(k+1)⌉ | linear questions\n")
	for i := range binary {
		k := binary[i].Overlaps
		fmt.Fprintf(w, "              %-9d | %-16d | %-11d | %d\n",
			k, binary[i].Questions, int(math.Ceil(math.Log2(float64(k+1)))), linear[i].Questions)
	}
}
