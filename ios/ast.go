// Package ios models the subset of the Cisco IOS configuration language the
// paper manipulates: route-maps, ip prefix-lists, ip as-path access-lists,
// ip community-lists, and named/numbered extended access-lists.
//
// The package provides a line-oriented parser (parse.go), a canonical printer
// (print.go) whose output round-trips through the parser, and structural
// helpers used by the insertion machinery (renaming ancillary lists,
// renumbering stanzas, reference validation).
package ios

import (
	"fmt"
	"net/netip"
	"sort"
)

// Config is a parsed configuration fragment: every named ancillary list plus
// the route-maps and ACLs that reference them.
type Config struct {
	ASPathLists    map[string]*ASPathList
	PrefixLists    map[string]*PrefixList
	CommunityLists map[string]*CommunityList
	RouteMaps      map[string]*RouteMap
	ACLs           map[string]*ACL

	// order preserves first-definition order for deterministic printing.
	order []ref
}

type refKind int

const (
	refASPath refKind = iota
	refPrefix
	refCommunity
	refRouteMap
	refACL
)

type ref struct {
	kind refKind
	name string
}

// NewConfig returns an empty configuration.
func NewConfig() *Config {
	return &Config{
		ASPathLists:    map[string]*ASPathList{},
		PrefixLists:    map[string]*PrefixList{},
		CommunityLists: map[string]*CommunityList{},
		RouteMaps:      map[string]*RouteMap{},
		ACLs:           map[string]*ACL{},
	}
}

// ---------- Ancillary lists ----------

// ASPathList is an `ip as-path access-list`: an ordered list of permit/deny
// regex entries; the first matching entry decides, default deny.
type ASPathList struct {
	Name    string
	Entries []ASPathEntry
}

// ASPathEntry is one regex line of an as-path list.
type ASPathEntry struct {
	Permit bool
	Regex  string
}

// PrefixList is an `ip prefix-list`: ordered permit/deny prefix entries with
// optional ge/le length bounds; first match decides, default deny.
type PrefixList struct {
	Name    string
	Entries []PrefixListEntry
}

// PrefixListEntry is one line of a prefix list. Ge and Le are 0 when absent;
// Cisco semantics then require the route's length to equal the entry's
// prefix length exactly (when both absent) or fall in [Ge,32] / [len,Le].
type PrefixListEntry struct {
	Seq    int
	Permit bool
	Prefix netip.Prefix
	Ge, Le int
}

// LenRange resolves the effective [lo,hi] bounds on matched prefix length.
func (e PrefixListEntry) LenRange() (lo, hi int) {
	l := e.Prefix.Bits()
	switch {
	case e.Ge == 0 && e.Le == 0:
		return l, l
	case e.Ge == 0:
		return l, e.Le
	case e.Le == 0:
		return e.Ge, 32
	default:
		return e.Ge, e.Le
	}
}

// CommunityList is an `ip community-list`. Expanded lists hold regexes;
// standard lists hold literal communities (all of which must be present on
// the route for the entry to match).
type CommunityList struct {
	Name     string
	Expanded bool
	Entries  []CommunityListEntry
}

// CommunityListEntry is one line of a community list. For expanded lists
// Values holds a single regex; for standard lists it holds one or more
// literal communities.
type CommunityListEntry struct {
	Permit bool
	Values []string
}

// ---------- Route maps ----------

// RouteMap is an ordered list of stanzas evaluated first-match; routes that
// match no stanza are denied by the implicit trailing deny.
type RouteMap struct {
	Name    string
	Stanzas []*Stanza
}

// Stanza is one `route-map NAME permit|deny SEQ` block. All match clauses
// must hold for the stanza to match (conjunction); set clauses apply only on
// permit.
type Stanza struct {
	Seq     int
	Permit  bool
	Matches []Match
	Sets    []SetClause
	// Continue, when non-nil, makes a matching permit stanza accumulate its
	// set clauses and hand evaluation to the stanza with sequence number
	// Target (0 = the textually next stanza), per Cisco `continue [N]`.
	// Continue on a deny stanza is ignored, as on Cisco devices.
	Continue *ContinueClause
}

// ContinueClause is a route-map continue statement.
type ContinueClause struct {
	// Target is the sequence number to continue at; 0 means the next stanza.
	Target int
}

// Clone returns a deep copy of the stanza.
func (s *Stanza) Clone() *Stanza {
	out := &Stanza{Seq: s.Seq, Permit: s.Permit}
	out.Matches = append([]Match(nil), s.Matches...)
	out.Sets = append([]SetClause(nil), s.Sets...)
	if s.Continue != nil {
		c := *s.Continue
		out.Continue = &c
	}
	return out
}

// HasContinue reports whether any stanza of the route map uses continue;
// analyses whose semantics assume one-stanza-decides reject such maps, while
// the overlap analysis (which ignores actions, as §3 of the paper explains)
// accepts them.
func (rm *RouteMap) HasContinue() bool {
	for _, st := range rm.Stanzas {
		if st.Continue != nil {
			return true
		}
	}
	return false
}

// Match is a route-map match clause.
type Match interface {
	matchClause()
	String() string
}

// MatchASPath matches when the named as-path list permits the route's path.
type MatchASPath struct{ List string }

// MatchPrefixList matches when the named prefix list permits the route's
// network.
type MatchPrefixList struct{ List string }

// MatchCommunity matches when the named community list permits the route's
// community set.
type MatchCommunity struct{ List string }

// MatchNextHop matches when the named prefix list permits the route's
// next-hop address (treated as a /32, per Cisco `match ip next-hop
// prefix-list`).
type MatchNextHop struct{ List string }

// MatchLocalPref matches an exact local-preference value.
type MatchLocalPref struct{ Value uint32 }

// MatchMetric matches an exact MED value.
type MatchMetric struct{ Value uint32 }

// MatchTag matches an exact tag value.
type MatchTag struct{ Value uint32 }

func (MatchASPath) matchClause()     {}
func (MatchPrefixList) matchClause() {}
func (MatchNextHop) matchClause()    {}
func (MatchCommunity) matchClause()  {}
func (MatchLocalPref) matchClause()  {}
func (MatchMetric) matchClause()     {}
func (MatchTag) matchClause()        {}

func (m MatchASPath) String() string     { return "match as-path " + m.List }
func (m MatchPrefixList) String() string { return "match ip address prefix-list " + m.List }
func (m MatchNextHop) String() string    { return "match ip next-hop prefix-list " + m.List }
func (m MatchCommunity) String() string  { return "match community " + m.List }
func (m MatchLocalPref) String() string  { return fmt.Sprintf("match local-preference %d", m.Value) }
func (m MatchMetric) String() string     { return fmt.Sprintf("match metric %d", m.Value) }
func (m MatchTag) String() string        { return fmt.Sprintf("match tag %d", m.Value) }

// SetClause is a route-map set action.
type SetClause interface {
	setClause()
	String() string
}

// SetMetric sets the MED.
type SetMetric struct{ Value uint32 }

// SetLocalPref sets the local preference.
type SetLocalPref struct{ Value uint32 }

// SetCommunity sets (or, with Additive, appends) communities.
type SetCommunity struct {
	Communities []string
	Additive    bool
}

// SetNextHop sets the next-hop address.
type SetNextHop struct{ Addr netip.Addr }

// SetWeight sets the Cisco-local weight.
type SetWeight struct{ Value uint16 }

// SetTag sets the route tag.
type SetTag struct{ Value uint32 }

func (SetMetric) setClause()    {}
func (SetLocalPref) setClause() {}
func (SetCommunity) setClause() {}
func (SetNextHop) setClause()   {}
func (SetWeight) setClause()    {}
func (SetTag) setClause()       {}

func (s SetMetric) String() string    { return fmt.Sprintf("set metric %d", s.Value) }
func (s SetLocalPref) String() string { return fmt.Sprintf("set local-preference %d", s.Value) }
func (s SetCommunity) String() string {
	out := "set community"
	for _, c := range s.Communities {
		out += " " + c
	}
	if s.Additive {
		out += " additive"
	}
	return out
}
func (s SetNextHop) String() string { return "set ip next-hop " + s.Addr.String() }
func (s SetWeight) String() string  { return fmt.Sprintf("set weight %d", s.Value) }
func (s SetTag) String() string     { return fmt.Sprintf("set tag %d", s.Value) }

// ---------- Access lists ----------

// ACL is a named or numbered extended access list; first match decides,
// default deny.
type ACL struct {
	Name    string
	Entries []*ACE
}

// ACE is one access-control entry.
type ACE struct {
	Seq              int
	Permit           bool
	Protocol         ProtoSpec
	Src, Dst         AddrSpec
	SrcPort, DstPort PortSpec
	Established      bool
	// ICMP, when non-nil, constrains the ICMP type (and optionally code);
	// only valid with Protocol icmp.
	ICMP *ICMPSpec
}

// ICMPSpec matches the ICMP type and, when HasCode is set, the code.
type ICMPSpec struct {
	Type    uint8
	HasCode bool
	Code    uint8
}

// Matches reports whether the spec covers (typ, code).
func (is *ICMPSpec) Matches(typ, code uint8) bool {
	if is.Type != typ {
		return false
	}
	return !is.HasCode || is.Code == code
}

// Clone returns a deep copy of the entry.
func (a *ACE) Clone() *ACE {
	out := *a
	if a.ICMP != nil {
		ic := *a.ICMP
		out.ICMP = &ic
	}
	return &out
}

// ProtoSpec matches the IP protocol field. Any covers every protocol (the
// `ip` keyword).
type ProtoSpec struct {
	Any   bool
	Value uint8
}

// Matches reports whether the spec covers protocol p.
func (ps ProtoSpec) Matches(p uint8) bool { return ps.Any || ps.Value == p }

// AddrSpec matches an address with a Cisco wildcard mask: bits set in
// Wildcard are don't-cares. `host A` is Wildcard 0; `any` is Any true.
type AddrSpec struct {
	Any      bool
	Addr     netip.Addr
	Wildcard uint32
}

// Matches reports whether the spec covers address a.
func (as AddrSpec) Matches(a netip.Addr) bool {
	if as.Any {
		return true
	}
	want := addrToU32(as.Addr)
	got := addrToU32(a)
	return (want &^ as.Wildcard) == (got &^ as.Wildcard)
}

func addrToU32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// U32ToAddr converts a 32-bit value to an IPv4 netip.Addr.
func U32ToAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// AddrU32 exposes the numeric form of an address for the symbolic encoder.
func AddrU32(a netip.Addr) uint32 { return addrToU32(a) }

// PortOp is the comparison kind of a PortSpec.
type PortOp int

// Port comparison operators in IOS syntax order.
const (
	PortNone  PortOp = iota // no port constraint
	PortEq                  // eq N
	PortNeq                 // neq N
	PortLt                  // lt N
	PortGt                  // gt N
	PortRange               // range lo hi
)

// PortSpec matches a transport port.
type PortSpec struct {
	Op     PortOp
	Lo, Hi uint16 // Eq/Neq/Lt/Gt use Lo; Range uses both
}

// Matches reports whether the spec covers port p.
func (ps PortSpec) Matches(p uint16) bool {
	switch ps.Op {
	case PortNone:
		return true
	case PortEq:
		return p == ps.Lo
	case PortNeq:
		return p != ps.Lo
	case PortLt:
		return p < ps.Lo
	case PortGt:
		return p > ps.Lo
	case PortRange:
		return ps.Lo <= p && p <= ps.Hi
	}
	return false
}

// ---------- Config mutation helpers ----------

// AddASPathList registers (or extends) an as-path list.
func (c *Config) AddASPathList(name string, entries ...ASPathEntry) *ASPathList {
	l, ok := c.ASPathLists[name]
	if !ok {
		l = &ASPathList{Name: name}
		c.ASPathLists[name] = l
		c.order = append(c.order, ref{refASPath, name})
	}
	l.Entries = append(l.Entries, entries...)
	return l
}

// AddPrefixList registers (or extends) a prefix list.
func (c *Config) AddPrefixList(name string, entries ...PrefixListEntry) *PrefixList {
	l, ok := c.PrefixLists[name]
	if !ok {
		l = &PrefixList{Name: name}
		c.PrefixLists[name] = l
		c.order = append(c.order, ref{refPrefix, name})
	}
	l.Entries = append(l.Entries, entries...)
	return l
}

// AddCommunityList registers (or extends) a community list.
func (c *Config) AddCommunityList(name string, expanded bool, entries ...CommunityListEntry) *CommunityList {
	l, ok := c.CommunityLists[name]
	if !ok {
		l = &CommunityList{Name: name, Expanded: expanded}
		c.CommunityLists[name] = l
		c.order = append(c.order, ref{refCommunity, name})
	}
	l.Entries = append(l.Entries, entries...)
	return l
}

// AddRouteMap registers a route-map (or returns the existing one).
func (c *Config) AddRouteMap(name string) *RouteMap {
	rm, ok := c.RouteMaps[name]
	if !ok {
		rm = &RouteMap{Name: name}
		c.RouteMaps[name] = rm
		c.order = append(c.order, ref{refRouteMap, name})
	}
	return rm
}

// AddACL registers an ACL (or returns the existing one).
func (c *Config) AddACL(name string) *ACL {
	a, ok := c.ACLs[name]
	if !ok {
		a = &ACL{Name: name}
		c.ACLs[name] = a
		c.order = append(c.order, ref{refACL, name})
	}
	return a
}

// Merge copies every definition of other into c. Name collisions are an
// error; use RenameLists on the snippet first.
func (c *Config) Merge(other *Config) error {
	for _, r := range other.order {
		switch r.kind {
		case refASPath:
			if _, dup := c.ASPathLists[r.name]; dup {
				return fmt.Errorf("ios: duplicate as-path list %q", r.name)
			}
			c.AddASPathList(r.name, other.ASPathLists[r.name].Entries...)
		case refPrefix:
			if _, dup := c.PrefixLists[r.name]; dup {
				return fmt.Errorf("ios: duplicate prefix-list %q", r.name)
			}
			c.AddPrefixList(r.name, other.PrefixLists[r.name].Entries...)
		case refCommunity:
			if _, dup := c.CommunityLists[r.name]; dup {
				return fmt.Errorf("ios: duplicate community-list %q", r.name)
			}
			src := other.CommunityLists[r.name]
			c.AddCommunityList(r.name, src.Expanded, src.Entries...)
		case refRouteMap:
			if _, dup := c.RouteMaps[r.name]; dup {
				return fmt.Errorf("ios: duplicate route-map %q", r.name)
			}
			dst := c.AddRouteMap(r.name)
			for _, st := range other.RouteMaps[r.name].Stanzas {
				dst.Stanzas = append(dst.Stanzas, st.Clone())
			}
		case refACL:
			if _, dup := c.ACLs[r.name]; dup {
				return fmt.Errorf("ios: duplicate ACL %q", r.name)
			}
			dst := c.AddACL(r.name)
			for _, e := range other.ACLs[r.name].Entries {
				dst.Entries = append(dst.Entries, e.Clone())
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	out := NewConfig()
	if err := out.Merge(c); err != nil {
		panic("ios: clone cannot collide: " + err.Error())
	}
	return out
}

// Validate checks that every list referenced by a route-map is defined.
func (c *Config) Validate() error {
	for _, rm := range c.RouteMaps {
		for _, st := range rm.Stanzas {
			for _, m := range st.Matches {
				switch m := m.(type) {
				case MatchASPath:
					if _, ok := c.ASPathLists[m.List]; !ok {
						return fmt.Errorf("ios: route-map %s references undefined as-path list %q", rm.Name, m.List)
					}
				case MatchPrefixList:
					if _, ok := c.PrefixLists[m.List]; !ok {
						return fmt.Errorf("ios: route-map %s references undefined prefix-list %q", rm.Name, m.List)
					}
				case MatchNextHop:
					if _, ok := c.PrefixLists[m.List]; !ok {
						return fmt.Errorf("ios: route-map %s references undefined next-hop prefix-list %q", rm.Name, m.List)
					}
				case MatchCommunity:
					if _, ok := c.CommunityLists[m.List]; !ok {
						return fmt.Errorf("ios: route-map %s references undefined community-list %q", rm.Name, m.List)
					}
				}
			}
		}
	}
	return nil
}

// FreshName returns base if unused, otherwise base2, base3, ... The check
// spans every namespace so renamed snippet lists can never capture.
func (c *Config) FreshName(base string) string {
	used := func(n string) bool {
		_, a := c.ASPathLists[n]
		_, b := c.PrefixLists[n]
		_, d := c.CommunityLists[n]
		_, e := c.RouteMaps[n]
		_, f := c.ACLs[n]
		return a || b || d || e || f
	}
	if !used(base) {
		return base
	}
	for i := 2; ; i++ {
		n := fmt.Sprintf("%s%d", base, i)
		if !used(n) {
			return n
		}
	}
}

// RenameList renames an ancillary list and rewrites every route-map
// reference to it. Missing names are a no-op for robustness during insertion.
func (c *Config) RenameList(old, new string) {
	if old == new {
		return
	}
	if l, ok := c.ASPathLists[old]; ok {
		delete(c.ASPathLists, old)
		l.Name = new
		c.ASPathLists[new] = l
		c.renameRef(refASPath, old, new)
	}
	if l, ok := c.PrefixLists[old]; ok {
		delete(c.PrefixLists, old)
		l.Name = new
		c.PrefixLists[new] = l
		c.renameRef(refPrefix, old, new)
	}
	if l, ok := c.CommunityLists[old]; ok {
		delete(c.CommunityLists, old)
		l.Name = new
		c.CommunityLists[new] = l
		c.renameRef(refCommunity, old, new)
	}
	for _, rm := range c.RouteMaps {
		for _, st := range rm.Stanzas {
			for i, m := range st.Matches {
				switch m := m.(type) {
				case MatchASPath:
					if m.List == old {
						st.Matches[i] = MatchASPath{List: new}
					}
				case MatchPrefixList:
					if m.List == old {
						st.Matches[i] = MatchPrefixList{List: new}
					}
				case MatchNextHop:
					if m.List == old {
						st.Matches[i] = MatchNextHop{List: new}
					}
				case MatchCommunity:
					if m.List == old {
						st.Matches[i] = MatchCommunity{List: new}
					}
				}
			}
		}
	}
}

func (c *Config) renameRef(kind refKind, old, new string) {
	for i, r := range c.order {
		if r.kind == kind && r.name == old {
			c.order[i].name = new
			return
		}
	}
}

// RemoveRouteMap deletes a route-map definition (no-op when absent).
func (c *Config) RemoveRouteMap(name string) {
	if _, ok := c.RouteMaps[name]; !ok {
		return
	}
	delete(c.RouteMaps, name)
	for i, r := range c.order {
		if r.kind == refRouteMap && r.name == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// ListNames returns every ancillary list name defined in c, sorted.
func (c *Config) ListNames() []string {
	var out []string
	for n := range c.ASPathLists {
		out = append(out, n)
	}
	for n := range c.PrefixLists {
		out = append(out, n)
	}
	for n := range c.CommunityLists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Renumber rewrites stanza sequence numbers as 10, 20, 30, ...
func (rm *RouteMap) Renumber() {
	for i, st := range rm.Stanzas {
		st.Seq = (i + 1) * 10
	}
}

// InsertStanza inserts st at index pos (0 = top) and renumbers.
func (rm *RouteMap) InsertStanza(pos int, st *Stanza) {
	if pos < 0 || pos > len(rm.Stanzas) {
		panic(fmt.Sprintf("ios: insert position %d out of range [0,%d]", pos, len(rm.Stanzas)))
	}
	rm.Stanzas = append(rm.Stanzas, nil)
	copy(rm.Stanzas[pos+1:], rm.Stanzas[pos:])
	rm.Stanzas[pos] = st
	rm.Renumber()
}

// Renumber rewrites ACE sequence numbers as 10, 20, 30, ...
func (a *ACL) Renumber() {
	for i, e := range a.Entries {
		e.Seq = (i + 1) * 10
	}
}

// InsertEntry inserts e at index pos (0 = top) and renumbers.
func (a *ACL) InsertEntry(pos int, e *ACE) {
	if pos < 0 || pos > len(a.Entries) {
		panic(fmt.Sprintf("ios: insert position %d out of range [0,%d]", pos, len(a.Entries)))
	}
	a.Entries = append(a.Entries, nil)
	copy(a.Entries[pos+1:], a.Entries[pos:])
	a.Entries[pos] = e
	a.Renumber()
}
