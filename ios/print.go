package ios

import (
	"fmt"
	"strings"
)

// Print renders the configuration in canonical IOS syntax. The output parses
// back to an equal configuration (round-trip property, tested).
func (c *Config) Print() string {
	var sb strings.Builder
	for i, r := range c.order {
		if i > 0 {
			sb.WriteByte('\n')
		}
		switch r.kind {
		case refASPath:
			printASPathList(&sb, c.ASPathLists[r.name])
		case refPrefix:
			printPrefixList(&sb, c.PrefixLists[r.name])
		case refCommunity:
			printCommunityList(&sb, c.CommunityLists[r.name])
		case refRouteMap:
			printRouteMap(&sb, c.RouteMaps[r.name])
		case refACL:
			printACL(&sb, c.ACLs[r.name])
		}
	}
	return sb.String()
}

func action(permit bool) string {
	if permit {
		return "permit"
	}
	return "deny"
}

func printASPathList(sb *strings.Builder, l *ASPathList) {
	for _, e := range l.Entries {
		fmt.Fprintf(sb, "ip as-path access-list %s %s %s\n", l.Name, action(e.Permit), e.Regex)
	}
}

func printPrefixList(sb *strings.Builder, l *PrefixList) {
	for _, e := range l.Entries {
		fmt.Fprintf(sb, "ip prefix-list %s seq %d %s %s", l.Name, e.Seq, action(e.Permit), e.Prefix)
		if e.Ge != 0 {
			fmt.Fprintf(sb, " ge %d", e.Ge)
		}
		if e.Le != 0 {
			fmt.Fprintf(sb, " le %d", e.Le)
		}
		sb.WriteByte('\n')
	}
}

func printCommunityList(sb *strings.Builder, l *CommunityList) {
	kind := "standard"
	if l.Expanded {
		kind = "expanded"
	}
	for _, e := range l.Entries {
		fmt.Fprintf(sb, "ip community-list %s %s %s %s\n", kind, l.Name, action(e.Permit), strings.Join(e.Values, " "))
	}
}

func printRouteMap(sb *strings.Builder, rm *RouteMap) {
	for _, st := range rm.Stanzas {
		fmt.Fprintf(sb, "route-map %s %s %d\n", rm.Name, action(st.Permit), st.Seq)
		for _, m := range st.Matches {
			fmt.Fprintf(sb, " %s\n", m.String())
		}
		for _, s := range st.Sets {
			fmt.Fprintf(sb, " %s\n", s.String())
		}
		if st.Continue != nil {
			if st.Continue.Target > 0 {
				fmt.Fprintf(sb, " continue %d\n", st.Continue.Target)
			} else {
				fmt.Fprintf(sb, " continue\n")
			}
		}
	}
}

func printACL(sb *strings.Builder, a *ACL) {
	fmt.Fprintf(sb, "ip access-list extended %s\n", a.Name)
	for _, e := range a.Entries {
		fmt.Fprintf(sb, " %s\n", e.String())
	}
}

// String renders the ACE body (without the leading indent), including its
// sequence number.
func (e *ACE) String() string {
	var sb strings.Builder
	if e.Seq > 0 {
		fmt.Fprintf(&sb, "%d ", e.Seq)
	}
	sb.WriteString(action(e.Permit))
	sb.WriteByte(' ')
	sb.WriteString(e.Protocol.String())
	sb.WriteByte(' ')
	sb.WriteString(e.Src.String())
	if s := e.SrcPort.String(); s != "" {
		sb.WriteByte(' ')
		sb.WriteString(s)
	}
	sb.WriteByte(' ')
	sb.WriteString(e.Dst.String())
	if s := e.DstPort.String(); s != "" {
		sb.WriteByte(' ')
		sb.WriteString(s)
	}
	if e.ICMP != nil {
		sb.WriteByte(' ')
		sb.WriteString(icmpTypeWord(e.ICMP.Type))
		if e.ICMP.HasCode {
			fmt.Fprintf(&sb, " %d", e.ICMP.Code)
		}
	}
	if e.Established {
		sb.WriteString(" established")
	}
	return sb.String()
}

// icmpTypeWord renders known ICMP types as their IOS keyword; unknown types
// print numerically. The mapping is the inverse of icmpTypeNames.
func icmpTypeWord(t uint8) string {
	switch t {
	case 0:
		return "echo-reply"
	case 3:
		return "unreachable"
	case 5:
		return "redirect"
	case 8:
		return "echo"
	case 11:
		return "time-exceeded"
	case 12:
		return "parameter-problem"
	case 13:
		return "timestamp-request"
	case 14:
		return "timestamp-reply"
	default:
		return fmt.Sprintf("%d", t)
	}
}

// String renders the protocol in IOS keyword form.
func (ps ProtoSpec) String() string {
	if ps.Any {
		return "ip"
	}
	switch ps.Value {
	case 1:
		return "icmp"
	case 6:
		return "tcp"
	case 17:
		return "udp"
	default:
		return fmt.Sprintf("%d", ps.Value)
	}
}

// String renders the address spec in IOS form (any / host A / A WILDCARD).
func (as AddrSpec) String() string {
	switch {
	case as.Any:
		return "any"
	case as.Wildcard == 0:
		return "host " + as.Addr.String()
	default:
		return as.Addr.String() + " " + U32ToAddr(as.Wildcard).String()
	}
}

// String renders the port spec; empty when unconstrained.
func (ps PortSpec) String() string {
	switch ps.Op {
	case PortNone:
		return ""
	case PortEq:
		return fmt.Sprintf("eq %d", ps.Lo)
	case PortNeq:
		return fmt.Sprintf("neq %d", ps.Lo)
	case PortLt:
		return fmt.Sprintf("lt %d", ps.Lo)
	case PortGt:
		return fmt.Sprintf("gt %d", ps.Lo)
	case PortRange:
		return fmt.Sprintf("range %d %d", ps.Lo, ps.Hi)
	}
	return ""
}
