package ios

import (
	"net/netip"
	"strings"
	"testing"
)

// The paper's §2.1 running example.
const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

// The paper's LLM-generated snippet.
const paperSnippet = `ip community-list expanded COM_LIST permit _300:3_
ip prefix-list PREFIX_100 seq 10 permit 100.0.0.0/16 le 23
route-map SET_METRIC permit 10
 match community COM_LIST
 match ip address prefix-list PREFIX_100
 set metric 55
`

func TestParsePaperExample(t *testing.T) {
	cfg, err := Parse(paperISPOut)
	if err != nil {
		t.Fatal(err)
	}
	rm := cfg.RouteMaps["ISP_OUT"]
	if rm == nil {
		t.Fatal("ISP_OUT not parsed")
	}
	if len(rm.Stanzas) != 3 {
		t.Fatalf("got %d stanzas, want 3", len(rm.Stanzas))
	}
	if rm.Stanzas[0].Permit || rm.Stanzas[1].Permit || !rm.Stanzas[2].Permit {
		t.Error("stanza actions wrong")
	}
	if got := rm.Stanzas[0].Matches[0].(MatchASPath).List; got != "D0" {
		t.Errorf("stanza 10 matches %q, want D0", got)
	}
	d1 := cfg.PrefixLists["D1"]
	if len(d1.Entries) != 3 {
		t.Fatalf("D1 has %d entries, want 3", len(d1.Entries))
	}
	lo, hi := d1.Entries[0].LenRange()
	if lo != 8 || hi != 24 {
		t.Errorf("10.0.0.0/8 le 24 range = [%d,%d], want [8,24]", lo, hi)
	}
	lo, hi = d1.Entries[2].LenRange()
	if lo != 24 || hi != 32 {
		t.Errorf("1.0.0.0/20 ge 24 range = [%d,%d], want [24,32]", lo, hi)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseSnippet(t *testing.T) {
	cfg, err := Parse(paperSnippet)
	if err != nil {
		t.Fatal(err)
	}
	cl := cfg.CommunityLists["COM_LIST"]
	if cl == nil || !cl.Expanded {
		t.Fatal("COM_LIST missing or not expanded")
	}
	if cl.Entries[0].Values[0] != "_300:3_" {
		t.Errorf("regex = %q", cl.Entries[0].Values[0])
	}
	st := cfg.RouteMaps["SET_METRIC"].Stanzas[0]
	if len(st.Matches) != 2 || len(st.Sets) != 1 {
		t.Fatalf("stanza shape wrong: %d matches, %d sets", len(st.Matches), len(st.Sets))
	}
	if st.Sets[0].(SetMetric).Value != 55 {
		t.Error("set metric != 55")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{paperISPOut, paperSnippet} {
		cfg, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := cfg.Print()
		cfg2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, printed)
		}
		if printed2 := cfg2.Print(); printed2 != printed {
			t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
		}
	}
}

func TestStanzaOrderBySeq(t *testing.T) {
	cfg := MustParse(`route-map RM permit 30
route-map RM deny 10
route-map RM permit 20
`)
	rm := cfg.RouteMaps["RM"]
	if rm.Stanzas[0].Seq != 10 || rm.Stanzas[1].Seq != 20 || rm.Stanzas[2].Seq != 30 {
		t.Errorf("stanzas not ordered by seq: %d %d %d", rm.Stanzas[0].Seq, rm.Stanzas[1].Seq, rm.Stanzas[2].Seq)
	}
}

func TestDuplicateSeqRejected(t *testing.T) {
	_, err := Parse("route-map RM permit 10\nroute-map RM deny 10\n")
	if err == nil {
		t.Fatal("duplicate sequence number should fail")
	}
}

func TestParseACL(t *testing.T) {
	cfg := MustParse(`ip access-list extended EDGE_IN
 permit tcp host 1.1.1.1 host 2.2.2.2 eq www
 deny udp 10.0.0.0 0.0.0.255 any
 permit tcp any any established
 deny ip any any
`)
	acl := cfg.ACLs["EDGE_IN"]
	if len(acl.Entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(acl.Entries))
	}
	e0 := acl.Entries[0]
	if !e0.Permit || e0.Protocol.Value != 6 || e0.DstPort.Op != PortEq || e0.DstPort.Lo != 80 {
		t.Errorf("entry 0 wrong: %s", e0)
	}
	if e0.Seq != 10 || acl.Entries[3].Seq != 40 {
		t.Error("auto sequence numbering wrong")
	}
	e1 := acl.Entries[1]
	if e1.Src.Wildcard != 0xFF {
		t.Errorf("wildcard = %#x, want 0xff", e1.Src.Wildcard)
	}
	if !e1.Src.Matches(netip.MustParseAddr("10.0.0.200")) || e1.Src.Matches(netip.MustParseAddr("10.0.1.1")) {
		t.Error("wildcard matching wrong")
	}
	if !acl.Entries[2].Established {
		t.Error("established flag lost")
	}
}

func TestParseNumberedACL(t *testing.T) {
	cfg := MustParse(`access-list 101 permit tcp host 1.1.1.1 any eq 80
access-list 101 deny ip any any
`)
	acl := cfg.ACLs["101"]
	if acl == nil || len(acl.Entries) != 2 {
		t.Fatal("numbered ACL not parsed")
	}
}

func TestParsePortForms(t *testing.T) {
	cfg := MustParse(`ip access-list extended P
 permit tcp any gt 1023 any eq bgp
 permit udp any range 5000 5100 any lt 53
 permit tcp any neq 22 any
`)
	es := cfg.ACLs["P"].Entries
	if es[0].SrcPort.Op != PortGt || es[0].SrcPort.Lo != 1023 || es[0].DstPort.Lo != 179 {
		t.Error("gt/eq-keyword parse wrong")
	}
	if es[1].SrcPort.Op != PortRange || es[1].SrcPort.Hi != 5100 || es[1].DstPort.Op != PortLt {
		t.Error("range/lt parse wrong")
	}
	if es[2].SrcPort.Op != PortNeq {
		t.Error("neq parse wrong")
	}
	if !es[2].SrcPort.Matches(23) || es[2].SrcPort.Matches(22) {
		t.Error("neq matching wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"route-map RM allow 10\n",
		"route-map RM permit ten\n",
		"match as-path D0\n", // outside stanza
		"route-map RM permit 10\n match frobnicate X\n",
		"route-map RM permit 10\n set metric lots\n",
		"ip prefix-list L seq 5 permit 10.0.0.0/8 ge 4\n", // ge < prefix len
		"ip prefix-list L permit 500.0.0.0/8\n",
		"ip as-path access-list\n",
		"ip access-list extended A\n permit tcp any\n",
		"ip access-list extended A\n permit ip any any eq 80\n",        // port on ip
		"ip access-list extended A\n permit udp any any established\n", // established on udp
		"access-list 10 permit ip any any\n",                           // standard number
		"frobnicate\n",
		"route-map RM permit 10\n set community notacomm\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	cfg := MustParse("! a comment\n\n# another\nroute-map RM permit 10\n")
	if len(cfg.RouteMaps["RM"].Stanzas) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestFreshName(t *testing.T) {
	cfg := MustParse(paperISPOut)
	if got := cfg.FreshName("D2"); got != "D2" {
		t.Errorf("FreshName(D2) = %q", got)
	}
	if got := cfg.FreshName("D1"); got != "D12" {
		t.Errorf("FreshName(D1) = %q, want D12", got)
	}
	if got := cfg.FreshName("ISP_OUT"); got != "ISP_OUT2" {
		t.Errorf("FreshName(ISP_OUT) = %q", got)
	}
}

func TestRenameList(t *testing.T) {
	cfg := MustParse(paperSnippet)
	cfg.RenameList("COM_LIST", "D2")
	cfg.RenameList("PREFIX_100", "D3")
	if _, ok := cfg.CommunityLists["D2"]; !ok {
		t.Fatal("community list not renamed")
	}
	if _, ok := cfg.PrefixLists["D3"]; !ok {
		t.Fatal("prefix list not renamed")
	}
	st := cfg.RouteMaps["SET_METRIC"].Stanzas[0]
	if st.Matches[0].(MatchCommunity).List != "D2" || st.Matches[1].(MatchPrefixList).List != "D3" {
		t.Error("references not rewritten")
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("Validate after rename: %v", err)
	}
	if strings.Contains(cfg.Print(), "COM_LIST") {
		t.Error("old name survives in printed output")
	}
}

func TestInsertStanzaAndRenumber(t *testing.T) {
	cfg := MustParse(paperISPOut)
	rm := cfg.RouteMaps["ISP_OUT"]
	newStanza := &Stanza{Permit: true, Matches: []Match{MatchCommunity{List: "D2"}}}
	rm.InsertStanza(0, newStanza)
	if rm.Stanzas[0] != newStanza {
		t.Fatal("not inserted at top")
	}
	for i, st := range rm.Stanzas {
		if st.Seq != (i+1)*10 {
			t.Errorf("stanza %d has seq %d", i, st.Seq)
		}
	}
	rm2 := MustParse(paperISPOut).RouteMaps["ISP_OUT"]
	rm2.InsertStanza(3, newStanza.Clone())
	if rm2.Stanzas[3].Matches[0].(MatchCommunity).List != "D2" {
		t.Fatal("not inserted at bottom")
	}
}

func TestMergeCollision(t *testing.T) {
	a := MustParse(paperISPOut)
	b := MustParse("ip prefix-list D1 seq 10 permit 9.0.0.0/8\n")
	if err := a.Merge(b); err == nil {
		t.Fatal("merge should detect duplicate D1")
	}
	c := MustParse(paperSnippet)
	if err := a.Merge(c); err != nil {
		t.Fatalf("disjoint merge failed: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate after merge: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustParse(paperISPOut)
	b := a.Clone()
	b.RouteMaps["ISP_OUT"].Stanzas[0].Permit = true
	if a.RouteMaps["ISP_OUT"].Stanzas[0].Permit {
		t.Error("clone shares stanza storage")
	}
	b.PrefixLists["D1"].Entries[0].Le = 9
	if a.PrefixLists["D1"].Entries[0].Le == 9 {
		t.Error("clone shares prefix-list storage")
	}
}

func TestValidateCatchesDangling(t *testing.T) {
	cfg := MustParse("route-map RM permit 10\n match as-path NOPE\n")
	if err := cfg.Validate(); err == nil {
		t.Fatal("dangling as-path reference not caught")
	}
}

func TestStandardCommunityList(t *testing.T) {
	cfg := MustParse("ip community-list standard CL permit 100:1 100:2\n")
	cl := cfg.CommunityLists["CL"]
	if cl.Expanded {
		t.Fatal("standard list parsed as expanded")
	}
	if len(cl.Entries[0].Values) != 2 {
		t.Fatal("standard list values wrong")
	}
	if _, err := Parse("ip community-list standard CL permit 100:1\nip community-list expanded CL permit _1_\n"); err == nil {
		t.Error("mixed standard/expanded should fail")
	}
}

func TestSetClauses(t *testing.T) {
	cfg := MustParse(`route-map RM permit 10
 set local-preference 200
 set community 300:3 400:4 additive
 set ip next-hop 10.0.0.1
 set weight 100
 set tag 777
`)
	sets := cfg.RouteMaps["RM"].Stanzas[0].Sets
	if len(sets) != 5 {
		t.Fatalf("got %d sets", len(sets))
	}
	sc := sets[1].(SetCommunity)
	if !sc.Additive || len(sc.Communities) != 2 {
		t.Error("set community additive parse wrong")
	}
}

func TestParseICMPTypes(t *testing.T) {
	cfg := MustParse(`ip access-list extended I
 permit icmp any any echo
 permit icmp any any echo-reply
 deny icmp any any unreachable 1
 permit icmp any any 42
 permit icmp any any
`)
	es := cfg.ACLs["I"].Entries
	if es[0].ICMP == nil || es[0].ICMP.Type != 8 || es[0].ICMP.HasCode {
		t.Errorf("echo parse wrong: %+v", es[0].ICMP)
	}
	if es[1].ICMP.Type != 0 {
		t.Errorf("echo-reply parse wrong: %+v", es[1].ICMP)
	}
	if es[2].ICMP.Type != 3 || !es[2].ICMP.HasCode || es[2].ICMP.Code != 1 {
		t.Errorf("unreachable 1 parse wrong: %+v", es[2].ICMP)
	}
	if es[3].ICMP.Type != 42 {
		t.Errorf("numeric type parse wrong: %+v", es[3].ICMP)
	}
	if es[4].ICMP != nil {
		t.Error("bare icmp entry should have no ICMP spec")
	}
	// Round trip.
	printed := cfg.Print()
	if MustParse(printed).Print() != printed {
		t.Errorf("ICMP entries not round-trip stable:\n%s", printed)
	}
	// Keyword rendering.
	if got := es[0].String(); !strings.Contains(got, "echo") {
		t.Errorf("String = %q", got)
	}
}

func TestParseICMPErrors(t *testing.T) {
	for _, bad := range []string{
		"ip access-list extended I\n permit icmp any any frobnicate\n",
		"ip access-list extended I\n permit icmp any any 300\n",
		"ip access-list extended I\n permit icmp any any echo xyz\n",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestICMPSpecMatches(t *testing.T) {
	typeOnly := &ICMPSpec{Type: 8}
	if !typeOnly.Matches(8, 0) || !typeOnly.Matches(8, 7) || typeOnly.Matches(0, 0) {
		t.Error("type-only spec wrong")
	}
	withCode := &ICMPSpec{Type: 3, HasCode: true, Code: 1}
	if !withCode.Matches(3, 1) || withCode.Matches(3, 2) || withCode.Matches(8, 1) {
		t.Error("type+code spec wrong")
	}
}

func TestRemoveRouteMap(t *testing.T) {
	cfg := MustParse(paperISPOut)
	cfg.RemoveRouteMap("ISP_OUT")
	if _, ok := cfg.RouteMaps["ISP_OUT"]; ok {
		t.Fatal("route-map not removed")
	}
	if strings.Contains(cfg.Print(), "route-map") {
		t.Error("removed map still printed")
	}
	cfg.RemoveRouteMap("NOPE") // no-op must not panic
}

func TestMergeAllKinds(t *testing.T) {
	a := MustParse("ip as-path access-list A permit _1_\nip community-list expanded C permit _2:2_\n")
	b := MustParse("ip access-list extended ACL1\n permit ip any any\nroute-map RM permit 10\n")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.ACLs["ACL1"]; !ok {
		t.Error("ACL not merged")
	}
	if _, ok := a.RouteMaps["RM"]; !ok {
		t.Error("route-map not merged")
	}
	// Duplicate as-path / community / ACL / route-map all collide.
	for _, dup := range []string{
		"ip as-path access-list A permit _9_\n",
		"ip community-list expanded C permit _9:9_\n",
		"ip access-list extended ACL1\n deny ip any any\n",
		"route-map RM deny 10\n",
	} {
		if err := a.Merge(MustParse(dup)); err == nil {
			t.Errorf("Merge(%q) should collide", dup)
		}
	}
}

func TestRenameListAllKinds(t *testing.T) {
	cfg := MustParse(`ip as-path access-list AP permit _1_
ip community-list expanded CL permit _2:2_
ip prefix-list PL seq 10 permit 10.0.0.0/8
route-map RM permit 10
 match as-path AP
 match community CL
 match ip address prefix-list PL
 match ip next-hop prefix-list PL
`)
	cfg.RenameList("AP", "AP2")
	cfg.RenameList("CL", "CL2")
	cfg.RenameList("PL", "PL2")
	cfg.RenameList("GHOST", "X") // no-op
	if err := cfg.Validate(); err != nil {
		t.Fatalf("validate after renames: %v", err)
	}
	st := cfg.RouteMaps["RM"].Stanzas[0]
	if st.Matches[0].(MatchASPath).List != "AP2" ||
		st.Matches[1].(MatchCommunity).List != "CL2" ||
		st.Matches[2].(MatchPrefixList).List != "PL2" ||
		st.Matches[3].(MatchNextHop).List != "PL2" {
		t.Errorf("references not rewritten: %+v", st.Matches)
	}
}

func TestValidateNextHopReference(t *testing.T) {
	cfg := MustParse("route-map RM permit 10\n match ip next-hop prefix-list GHOST\n")
	if err := cfg.Validate(); err == nil {
		t.Fatal("dangling next-hop prefix-list not caught")
	}
}

func TestMatchAndSetStrings(t *testing.T) {
	cases := map[string]string{
		MatchASPath{List: "A"}.String():                                       "match as-path A",
		MatchPrefixList{List: "P"}.String():                                   "match ip address prefix-list P",
		MatchNextHop{List: "N"}.String():                                      "match ip next-hop prefix-list N",
		MatchCommunity{List: "C"}.String():                                    "match community C",
		MatchLocalPref{Value: 7}.String():                                     "match local-preference 7",
		MatchMetric{Value: 8}.String():                                        "match metric 8",
		MatchTag{Value: 9}.String():                                           "match tag 9",
		SetMetric{Value: 1}.String():                                          "set metric 1",
		SetLocalPref{Value: 2}.String():                                       "set local-preference 2",
		SetWeight{Value: 3}.String():                                          "set weight 3",
		SetTag{Value: 4}.String():                                             "set tag 4",
		(SetCommunity{Communities: []string{"1:1"}, Additive: true}).String(): "set community 1:1 additive",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q want %q", got, want)
		}
	}
}
