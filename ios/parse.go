package ios

import (
	"bufio"
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ParseError reports a parse failure with its line number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ios: line %d: %s (in %q)", e.Line, e.Msg, e.Text)
}

// wellKnownPorts maps the IOS port keywords this dialect accepts.
// icmpTypeNames maps the IOS ICMP type keywords this dialect accepts.
var icmpTypeNames = map[string]uint8{
	"echo-reply": 0, "unreachable": 3, "redirect": 5, "echo": 8,
	"time-exceeded": 11, "parameter-problem": 12, "timestamp-request": 13,
	"timestamp-reply": 14,
}

var wellKnownPorts = map[string]uint16{
	"ftp-data": 20, "ftp": 21, "ssh": 22, "telnet": 23, "smtp": 25,
	"domain": 53, "www": 80, "pop3": 110, "ntp": 123, "snmp": 161,
	"bgp": 179, "https": 443, "syslog": 514,
}

// Parse reads a configuration fragment in Cisco IOS syntax.
func Parse(text string) (*Config, error) {
	cfg := NewConfig()
	p := &lineParser{cfg: cfg}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(lineNo, line); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ios: %v", err)
	}
	return cfg, nil
}

// MustParse is Parse for statically known fragments; it panics on error.
func MustParse(text string) *Config {
	cfg, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return cfg
}

type lineParser struct {
	cfg *Config

	// Block context for indented continuation lines.
	curStanza *Stanza
	curACL    *ACL
}

func (p *lineParser) fail(n int, text, format string, args ...interface{}) error {
	return &ParseError{Line: n, Text: text, Msg: fmt.Sprintf(format, args...)}
}

func (p *lineParser) line(n int, text string) error {
	f := strings.Fields(text)
	switch {
	case f[0] == "route-map":
		p.curACL = nil
		return p.routeMapHeader(n, text, f)
	case f[0] == "match" || f[0] == "set":
		if p.curStanza == nil {
			return p.fail(n, text, "%s clause outside a route-map stanza", f[0])
		}
		if f[0] == "match" {
			return p.matchClause(n, text, f)
		}
		return p.setClause(n, text, f)
	case f[0] == "continue":
		if p.curStanza == nil {
			return p.fail(n, text, "continue outside a route-map stanza")
		}
		return p.continueClause(n, text, f)
	case f[0] == "ip" && len(f) >= 2 && f[1] == "as-path":
		p.reset()
		return p.asPathList(n, text, f)
	case f[0] == "ip" && len(f) >= 2 && f[1] == "prefix-list":
		p.reset()
		return p.prefixList(n, text, f)
	case f[0] == "ip" && len(f) >= 2 && f[1] == "community-list":
		p.reset()
		return p.communityList(n, text, f)
	case f[0] == "ip" && len(f) >= 2 && f[1] == "access-list":
		p.reset()
		return p.namedACLHeader(n, text, f)
	case f[0] == "access-list":
		p.reset()
		return p.numberedACE(n, text, f)
	case f[0] == "permit" || f[0] == "deny":
		if p.curACL == nil {
			return p.fail(n, text, "ACL entry outside an access-list block")
		}
		return p.aclEntry(n, text, f, 0)
	default:
		if seq, err := strconv.Atoi(f[0]); err == nil && p.curACL != nil && len(f) > 1 {
			return p.aclEntry(n, text, f[1:], seq)
		}
		return p.fail(n, text, "unrecognized command %q", f[0])
	}
}

func (p *lineParser) reset() {
	p.curStanza = nil
	p.curACL = nil
}

// route-map NAME permit|deny SEQ
func (p *lineParser) routeMapHeader(n int, text string, f []string) error {
	if len(f) != 4 {
		return p.fail(n, text, "want 'route-map NAME permit|deny SEQ'")
	}
	permit, err := parseAction(f[2])
	if err != nil {
		return p.fail(n, text, "%v", err)
	}
	seq, err := strconv.Atoi(f[3])
	if err != nil || seq <= 0 {
		return p.fail(n, text, "bad sequence number %q", f[3])
	}
	rm := p.cfg.AddRouteMap(f[1])
	for _, st := range rm.Stanzas {
		if st.Seq == seq {
			return p.fail(n, text, "duplicate sequence %d in route-map %s", seq, f[1])
		}
	}
	st := &Stanza{Seq: seq, Permit: permit}
	// Keep stanzas ordered by sequence number regardless of input order.
	pos := len(rm.Stanzas)
	for i, other := range rm.Stanzas {
		if other.Seq > seq {
			pos = i
			break
		}
	}
	rm.Stanzas = append(rm.Stanzas, nil)
	copy(rm.Stanzas[pos+1:], rm.Stanzas[pos:])
	rm.Stanzas[pos] = st
	p.curStanza = st
	return nil
}

func (p *lineParser) matchClause(n int, text string, f []string) error {
	st := p.curStanza
	switch {
	case len(f) == 3 && f[1] == "as-path":
		st.Matches = append(st.Matches, MatchASPath{List: f[2]})
	case len(f) == 5 && f[1] == "ip" && f[2] == "address" && f[3] == "prefix-list":
		st.Matches = append(st.Matches, MatchPrefixList{List: f[4]})
	case len(f) == 5 && f[1] == "ip" && f[2] == "next-hop" && f[3] == "prefix-list":
		st.Matches = append(st.Matches, MatchNextHop{List: f[4]})
	case len(f) == 3 && f[1] == "community":
		st.Matches = append(st.Matches, MatchCommunity{List: f[2]})
	case len(f) == 3 && f[1] == "local-preference":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return p.fail(n, text, "bad local-preference %q", f[2])
		}
		st.Matches = append(st.Matches, MatchLocalPref{Value: uint32(v)})
	case len(f) == 3 && f[1] == "metric":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return p.fail(n, text, "bad metric %q", f[2])
		}
		st.Matches = append(st.Matches, MatchMetric{Value: uint32(v)})
	case len(f) == 3 && f[1] == "tag":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return p.fail(n, text, "bad tag %q", f[2])
		}
		st.Matches = append(st.Matches, MatchTag{Value: uint32(v)})
	default:
		return p.fail(n, text, "unsupported match clause")
	}
	return nil
}

func (p *lineParser) setClause(n int, text string, f []string) error {
	st := p.curStanza
	switch {
	case len(f) == 3 && f[1] == "metric":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return p.fail(n, text, "bad metric %q", f[2])
		}
		st.Sets = append(st.Sets, SetMetric{Value: uint32(v)})
	case len(f) == 3 && f[1] == "local-preference":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return p.fail(n, text, "bad local-preference %q", f[2])
		}
		st.Sets = append(st.Sets, SetLocalPref{Value: uint32(v)})
	case len(f) >= 3 && f[1] == "community":
		sc := SetCommunity{}
		vals := f[2:]
		if vals[len(vals)-1] == "additive" {
			sc.Additive = true
			vals = vals[:len(vals)-1]
		}
		if len(vals) == 0 {
			return p.fail(n, text, "set community requires at least one community")
		}
		for _, v := range vals {
			if !validCommunityLiteral(v) {
				return p.fail(n, text, "bad community %q", v)
			}
		}
		sc.Communities = append(sc.Communities, vals...)
		st.Sets = append(st.Sets, sc)
	case len(f) == 4 && f[1] == "ip" && f[2] == "next-hop":
		a, err := netip.ParseAddr(f[3])
		if err != nil {
			return p.fail(n, text, "bad next-hop %q", f[3])
		}
		st.Sets = append(st.Sets, SetNextHop{Addr: a})
	case len(f) == 3 && f[1] == "weight":
		v, err := strconv.ParseUint(f[2], 10, 16)
		if err != nil {
			return p.fail(n, text, "bad weight %q", f[2])
		}
		st.Sets = append(st.Sets, SetWeight{Value: uint16(v)})
	case len(f) == 3 && f[1] == "tag":
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return p.fail(n, text, "bad tag %q", f[2])
		}
		st.Sets = append(st.Sets, SetTag{Value: uint32(v)})
	default:
		return p.fail(n, text, "unsupported set clause")
	}
	return nil
}

// continue [N]
func (p *lineParser) continueClause(n int, text string, f []string) error {
	if p.curStanza.Continue != nil {
		return p.fail(n, text, "duplicate continue clause")
	}
	c := &ContinueClause{}
	switch len(f) {
	case 1:
	case 2:
		seq, err := strconv.Atoi(f[1])
		if err != nil || seq <= p.curStanza.Seq {
			return p.fail(n, text, "continue target must be a sequence number greater than %d", p.curStanza.Seq)
		}
		c.Target = seq
	default:
		return p.fail(n, text, "want 'continue [SEQ]'")
	}
	p.curStanza.Continue = c
	return nil
}

func validCommunityLiteral(s string) bool {
	hi, lo, ok := strings.Cut(s, ":")
	if !ok {
		return false
	}
	if _, err := strconv.ParseUint(hi, 10, 16); err != nil {
		return false
	}
	_, err := strconv.ParseUint(lo, 10, 16)
	return err == nil
}

// ip as-path access-list NAME permit|deny REGEX
func (p *lineParser) asPathList(n int, text string, f []string) error {
	if len(f) < 6 || f[2] != "access-list" {
		return p.fail(n, text, "want 'ip as-path access-list NAME permit|deny REGEX'")
	}
	permit, err := parseAction(f[4])
	if err != nil {
		return p.fail(n, text, "%v", err)
	}
	regex := strings.Join(f[5:], " ")
	p.cfg.AddASPathList(f[3], ASPathEntry{Permit: permit, Regex: regex})
	return nil
}

// ip prefix-list NAME [seq N] permit|deny PFX [ge N] [le N]
func (p *lineParser) prefixList(n int, text string, f []string) error {
	if len(f) < 4 {
		return p.fail(n, text, "want 'ip prefix-list NAME [seq N] permit|deny PREFIX [ge N] [le N]'")
	}
	name := f[2]
	rest := f[3:]
	entry := PrefixListEntry{}
	if rest[0] == "seq" {
		if len(rest) < 3 {
			return p.fail(n, text, "seq requires a number")
		}
		seq, err := strconv.Atoi(rest[1])
		if err != nil {
			return p.fail(n, text, "bad seq %q", rest[1])
		}
		entry.Seq = seq
		rest = rest[2:]
	}
	permit, err := parseAction(rest[0])
	if err != nil {
		return p.fail(n, text, "%v", err)
	}
	entry.Permit = permit
	if len(rest) < 2 {
		return p.fail(n, text, "missing prefix")
	}
	pfx, err := netip.ParsePrefix(rest[1])
	if err != nil {
		return p.fail(n, text, "bad prefix %q: %v", rest[1], err)
	}
	entry.Prefix = pfx.Masked()
	rest = rest[2:]
	for len(rest) > 0 {
		if len(rest) < 2 {
			return p.fail(n, text, "dangling %q", rest[0])
		}
		v, err := strconv.Atoi(rest[1])
		if err != nil || v < 0 || v > 32 {
			return p.fail(n, text, "bad length bound %q", rest[1])
		}
		switch rest[0] {
		case "ge":
			entry.Ge = v
		case "le":
			entry.Le = v
		default:
			return p.fail(n, text, "unexpected token %q", rest[0])
		}
		rest = rest[2:]
	}
	lo, hi := entry.LenRange()
	if lo > hi || lo < entry.Prefix.Bits() {
		return p.fail(n, text, "inconsistent ge/le bounds for %s", entry.Prefix)
	}
	pl := p.cfg.AddPrefixList(name)
	if entry.Seq == 0 {
		maxSeq := 0
		for _, e := range pl.Entries {
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
		}
		entry.Seq = maxSeq + 10 // Cisco auto-assigns in steps of 5; we use 10 like the paper's examples
	}
	pl.Entries = append(pl.Entries, entry)
	return nil
}

// ip community-list [standard|expanded] NAME permit|deny VALUES...
func (p *lineParser) communityList(n int, text string, f []string) error {
	rest := f[2:]
	expanded := false
	switch {
	case len(rest) > 0 && rest[0] == "expanded":
		expanded = true
		rest = rest[1:]
	case len(rest) > 0 && rest[0] == "standard":
		rest = rest[1:]
	}
	if len(rest) < 3 {
		return p.fail(n, text, "want 'ip community-list [standard|expanded] NAME permit|deny VALUES'")
	}
	name := rest[0]
	permit, err := parseAction(rest[1])
	if err != nil {
		return p.fail(n, text, "%v", err)
	}
	values := rest[2:]
	if expanded {
		// Expanded lists carry a single regex (which may contain spaces).
		values = []string{strings.Join(values, " ")}
	} else {
		for _, v := range values {
			if !validCommunityLiteral(v) {
				return p.fail(n, text, "bad community literal %q in standard list", v)
			}
		}
	}
	if existing, ok := p.cfg.CommunityLists[name]; ok && existing.Expanded != expanded {
		return p.fail(n, text, "community-list %q mixes standard and expanded entries", name)
	}
	p.cfg.AddCommunityList(name, expanded, CommunityListEntry{Permit: permit, Values: values})
	return nil
}

// ip access-list extended NAME
func (p *lineParser) namedACLHeader(n int, text string, f []string) error {
	if len(f) != 4 || f[2] != "extended" {
		return p.fail(n, text, "want 'ip access-list extended NAME'")
	}
	p.curACL = p.cfg.AddACL(f[3])
	return nil
}

// access-list NUM permit|deny ...
func (p *lineParser) numberedACE(n int, text string, f []string) error {
	if len(f) < 3 {
		return p.fail(n, text, "want 'access-list NUM permit|deny ...'")
	}
	num, err := strconv.Atoi(f[1])
	if err != nil || num < 100 || num > 2699 {
		return p.fail(n, text, "extended ACL number %q out of range", f[1])
	}
	p.curACL = p.cfg.AddACL(f[1])
	err = p.aclEntry(n, text, f[2:], 0)
	p.curACL = nil
	return err
}

// aclEntry parses 'permit|deny PROTO SRC [PORT] DST [PORT] [established]'.
func (p *lineParser) aclEntry(n int, text string, f []string, seq int) error {
	permit, err := parseAction(f[0])
	if err != nil {
		return p.fail(n, text, "%v", err)
	}
	toks := f[1:]
	if len(toks) == 0 {
		return p.fail(n, text, "missing protocol")
	}
	proto, err := parseProto(toks[0])
	if err != nil {
		return p.fail(n, text, "%v", err)
	}
	toks = toks[1:]
	src, toks, err := parseAddrSpec(toks)
	if err != nil {
		return p.fail(n, text, "source: %v", err)
	}
	sport, toks, err := parsePortSpec(toks)
	if err != nil {
		return p.fail(n, text, "source port: %v", err)
	}
	dst, toks, err := parseAddrSpec(toks)
	if err != nil {
		return p.fail(n, text, "destination: %v", err)
	}
	dport, toks, err := parsePortSpec(toks)
	if err != nil {
		return p.fail(n, text, "destination port: %v", err)
	}
	var icmp *ICMPSpec
	if !proto.Any && proto.Value == 1 && len(toks) > 0 && toks[0] != "established" {
		icmp = &ICMPSpec{}
		if v, ok := icmpTypeNames[toks[0]]; ok {
			icmp.Type = v
		} else {
			v, err := strconv.ParseUint(toks[0], 10, 8)
			if err != nil {
				return p.fail(n, text, "bad icmp type %q", toks[0])
			}
			icmp.Type = uint8(v)
		}
		toks = toks[1:]
		if len(toks) > 0 && toks[0] != "established" {
			v, err := strconv.ParseUint(toks[0], 10, 8)
			if err != nil {
				return p.fail(n, text, "bad icmp code %q", toks[0])
			}
			icmp.HasCode = true
			icmp.Code = uint8(v)
			toks = toks[1:]
		}
	}
	est := false
	if len(toks) > 0 && toks[0] == "established" {
		est = true
		toks = toks[1:]
	}
	if len(toks) > 0 {
		return p.fail(n, text, "trailing tokens %v", toks)
	}
	if (sport.Op != PortNone || dport.Op != PortNone) && proto.Any {
		return p.fail(n, text, "port matches require tcp or udp")
	}
	if est && (proto.Any || proto.Value != 6) {
		return p.fail(n, text, "'established' requires tcp")
	}
	ace := &ACE{
		Seq: seq, Permit: permit, Protocol: proto,
		Src: src, Dst: dst, SrcPort: sport, DstPort: dport,
		Established: est, ICMP: icmp,
	}
	if ace.Seq == 0 {
		maxSeq := 0
		for _, e := range p.curACL.Entries {
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
		}
		ace.Seq = maxSeq + 10
	}
	p.curACL.Entries = append(p.curACL.Entries, ace)
	return nil
}

func parseAction(s string) (bool, error) {
	switch s {
	case "permit":
		return true, nil
	case "deny":
		return false, nil
	}
	return false, fmt.Errorf("action must be permit or deny, got %q", s)
}

func parseProto(s string) (ProtoSpec, error) {
	switch s {
	case "ip":
		return ProtoSpec{Any: true}, nil
	case "icmp":
		return ProtoSpec{Value: 1}, nil
	case "tcp":
		return ProtoSpec{Value: 6}, nil
	case "udp":
		return ProtoSpec{Value: 17}, nil
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return ProtoSpec{}, fmt.Errorf("unknown protocol %q", s)
	}
	return ProtoSpec{Value: uint8(v)}, nil
}

func parseAddrSpec(toks []string) (AddrSpec, []string, error) {
	if len(toks) == 0 {
		return AddrSpec{}, nil, fmt.Errorf("missing address")
	}
	switch toks[0] {
	case "any":
		return AddrSpec{Any: true}, toks[1:], nil
	case "host":
		if len(toks) < 2 {
			return AddrSpec{}, nil, fmt.Errorf("host requires an address")
		}
		a, err := netip.ParseAddr(toks[1])
		if err != nil {
			return AddrSpec{}, nil, fmt.Errorf("bad address %q", toks[1])
		}
		return AddrSpec{Addr: a}, toks[2:], nil
	}
	a, err := netip.ParseAddr(toks[0])
	if err != nil {
		return AddrSpec{}, nil, fmt.Errorf("bad address %q", toks[0])
	}
	if len(toks) < 2 {
		return AddrSpec{}, nil, fmt.Errorf("address %q requires a wildcard mask", toks[0])
	}
	w, err := netip.ParseAddr(toks[1])
	if err != nil {
		return AddrSpec{}, nil, fmt.Errorf("bad wildcard %q", toks[1])
	}
	return AddrSpec{Addr: a, Wildcard: addrToU32(w)}, toks[2:], nil
}

func parsePortSpec(toks []string) (PortSpec, []string, error) {
	if len(toks) == 0 {
		return PortSpec{}, toks, nil
	}
	var op PortOp
	switch toks[0] {
	case "eq":
		op = PortEq
	case "neq":
		op = PortNeq
	case "lt":
		op = PortLt
	case "gt":
		op = PortGt
	case "range":
		op = PortRange
	default:
		return PortSpec{}, toks, nil
	}
	if len(toks) < 2 {
		return PortSpec{}, nil, fmt.Errorf("%s requires a port", toks[0])
	}
	lo, err := parsePort(toks[1])
	if err != nil {
		return PortSpec{}, nil, err
	}
	if op == PortRange {
		if len(toks) < 3 {
			return PortSpec{}, nil, fmt.Errorf("range requires two ports")
		}
		hi, err := parsePort(toks[2])
		if err != nil {
			return PortSpec{}, nil, err
		}
		if hi < lo {
			return PortSpec{}, nil, fmt.Errorf("range %d %d is inverted", lo, hi)
		}
		return PortSpec{Op: op, Lo: lo, Hi: hi}, toks[3:], nil
	}
	return PortSpec{Op: op, Lo: lo}, toks[2:], nil
}

func parsePort(s string) (uint16, error) {
	if v, ok := wellKnownPorts[s]; ok {
		return v, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bad port %q", s)
	}
	return uint16(v), nil
}
