package ios

import (
	"strings"
	"testing"
)

// FuzzParse checks two invariants on arbitrary inputs: the parser never
// panics, and anything it accepts round-trips through the canonical printer
// (parse ∘ print ∘ parse is stable).
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperISPOut,
		paperSnippet,
		"ip access-list extended A\n permit tcp any any eq 80\n deny ip any any\n",
		"access-list 101 permit udp 10.0.0.0 0.0.0.255 any range 100 200\n",
		"route-map RM permit 10\n match local-preference 300\n set metric 55\n continue 20\nroute-map RM deny 20\n",
		"ip community-list standard CL permit 100:1 100:2\n",
		"ip as-path access-list A permit _32$\n",
		"ip prefix-list P seq 5 deny 1.0.0.0/20 ge 24 le 28\n",
		"! comment\n\nroute-map X deny 10\n",
		"route-map RM permit 10\n set community 1:1 2:2 additive\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := cfg.Print()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\n--- input ---\n%s\n--- printed ---\n%s", err, input, printed)
		}
		if again := back.Print(); again != printed {
			t.Fatalf("print not canonical:\n--- first ---\n%s\n--- second ---\n%s", printed, again)
		}
	})
}

// FuzzACEString checks that every parsed ACE renders to a line the parser
// accepts back.
func FuzzACEString(f *testing.F) {
	f.Add("permit tcp host 1.1.1.1 any eq 80")
	f.Add("deny udp 10.0.0.0 0.0.0.255 any range 5 10")
	f.Add("permit tcp any gt 1023 any established")
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			return
		}
		cfg, err := Parse("ip access-list extended F\n " + line + "\n")
		if err != nil {
			return
		}
		if len(cfg.ACLs["F"].Entries) != 1 {
			return // blank/comment line: nothing parsed
		}
		e := cfg.ACLs["F"].Entries[0]
		if _, err := Parse("ip access-list extended F\n " + e.String() + "\n"); err != nil {
			t.Fatalf("rendered ACE %q does not reparse: %v", e.String(), err)
		}
	})
}
