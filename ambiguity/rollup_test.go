package ambiguity

import (
	"bytes"
	"encoding/json"
	"testing"
)

func ledger(kind, strategy string, initial, residual float64, questions int) *Ledger {
	l := &Ledger{Kind: kind, Strategy: strategy, InitialBits: initial, ResidualBits: residual}
	gain := 0.0
	if questions > 0 {
		gain = (initial - residual) / float64(questions)
	}
	for i := 0; i < questions; i++ {
		l.Questions = append(l.Questions, Question{GainBits: gain, PreferNew: i%2 == 0})
	}
	return l
}

func TestRollupAdd(t *testing.T) {
	r := NewRollup()
	r.Add(ledger("route-map", "binary", 10, 0, 2))
	r.Add(ledger("route-map", "linear", 8, 2, 3))
	r.Add(ledger("acl", "binary", 4, 0, 0))
	r.Add(nil) // ledger-off updates are ignored, not counted

	if r.Total.Updates != 3 || r.Total.Questions != 5 {
		t.Fatalf("total = %+v, want 3 updates, 5 questions", r.Total)
	}
	if r.UpdatesWithQuestions != 2 {
		t.Errorf("UpdatesWithQuestions = %d, want 2", r.UpdatesWithQuestions)
	}
	// ResolvedBits is initial−residual per ledger, questions or not (the
	// acl run resolved its 4 bits via an equivalence proof, zero questions).
	if r.Total.InitialBits != 22 || r.Total.ResolvedBits != 20 || r.Total.ResidualBits != 2 {
		t.Errorf("total bits = %+v, want 22 initial / 20 resolved / 2 residual", r.Total)
	}
	if b := r.Strategies["binary"]; b == nil || b.Updates != 2 || b.Questions != 2 {
		t.Errorf("binary stats = %+v, want 2 updates, 2 questions", b)
	}
	if k := r.Kinds["acl"]; k == nil || k.Updates != 1 || k.Questions != 0 {
		t.Errorf("acl stats = %+v, want 1 update, 0 questions", k)
	}
	if got := r.StrategyNames(); len(got) != 2 || got[0] != "binary" || got[1] != "linear" {
		t.Errorf("StrategyNames = %v, want sorted [binary linear]", got)
	}
	if got := r.KindNames(); len(got) != 2 || got[0] != "acl" || got[1] != "route-map" {
		t.Errorf("KindNames = %v, want sorted [acl route-map]", got)
	}
}

// TestRollupMergeExactness is the fleet-aggregation contract: adding every
// ledger to one rollup must be byte-identical to splitting the ledgers across
// partial rollups and merging — the LB's per-backend view and the analyzer's
// per-segment view both depend on it.
func TestRollupMergeExactness(t *testing.T) {
	ledgers := []*Ledger{
		ledger("route-map", "binary", 10.25, 0, 2),
		ledger("route-map", "binary", 6.5, 1.5, 1),
		ledger("route-map", "linear", 8.125, 2, 4),
		ledger("acl", "binary", 4, 0, 1),
		ledger("acl", "top-bottom", 9, 3.5, 2),
		ledger("route-map", "top-bottom", 7.75, 7.75, 0),
	}
	whole := NewRollup()
	for _, l := range ledgers {
		whole.Add(l)
	}
	a, b := NewRollup(), NewRollup()
	for i, l := range ledgers {
		if i%2 == 0 {
			a.Add(l)
		} else {
			b.Add(l)
		}
	}
	merged := NewRollup()
	merged.Merge(a)
	merged.Merge(b)

	wantJSON, _ := json.Marshal(whole)
	gotJSON, _ := json.Marshal(merged)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("merge of partials diverges from whole:\nwhole  %s\nmerged %s", wantJSON, gotJSON)
	}
}

func TestRollupMergeNilSafety(t *testing.T) {
	var r *Rollup
	r.Merge(NewRollup()) // must not panic
	r.Add(&Ledger{Kind: "acl"})
	dst := NewRollup()
	dst.Merge(nil)
	if dst.Total.Updates != 0 {
		t.Fatalf("merging nil changed the rollup: %+v", dst.Total)
	}
}

func TestStrategyStatsHelpers(t *testing.T) {
	var nilStats *StrategyStats
	if nilStats.BitsPerQuestion() != 0 || nilStats.MeanQuestions() != 0 {
		t.Error("nil stats helpers must return 0")
	}
	s := &StrategyStats{Updates: 4, Questions: 8, ResolvedBits: 16}
	if got := s.BitsPerQuestion(); got != 2 {
		t.Errorf("BitsPerQuestion = %v, want 2", got)
	}
	if got := s.MeanQuestions(); got != 2 {
		t.Errorf("MeanQuestions = %v, want 2", got)
	}
	empty := &StrategyStats{}
	if empty.BitsPerQuestion() != 0 || empty.MeanQuestions() != 0 {
		t.Error("empty stats must not divide by zero")
	}
}
