package ambiguity

import (
	"bytes"
	"encoding/json"
	"math"
	"math/big"
	"testing"

	"github.com/clarifynet/clarify/bdd"
)

func TestLog2(t *testing.T) {
	cases := []struct {
		c    *big.Int
		want float64
	}{
		{nil, 0},
		{big.NewInt(0), 0},
		{big.NewInt(-4), 0},
		{big.NewInt(1), 0},
		{big.NewInt(2), 1},
		{big.NewInt(1024), 10},
		{new(big.Int).Lsh(big.NewInt(1), 200), 200},
		{new(big.Int).Lsh(big.NewInt(3), 100), 100 + math.Log2(3)},
	}
	for i, tc := range cases {
		if got := Log2(tc.c); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("case %d: Log2(%v) = %v, want %v", i, tc.c, got, tc.want)
		}
	}
	// Log2(3) is irrational; just sanity-bound it.
	if got := Log2(big.NewInt(3)); got < 1.58 || got > 1.59 {
		t.Errorf("Log2(3) = %v, want ≈1.585", got)
	}
}

func TestBits(t *testing.T) {
	p := bdd.NewPool(8)
	if got := Bits(p, bdd.False); got != 0 {
		t.Errorf("Bits(False) = %v, want 0", got)
	}
	if got := Bits(p, bdd.True); got != 8 {
		t.Errorf("Bits(True) = %v, want 8 (full universe)", got)
	}
	if got := Bits(p, p.Var(0)); got != 7 {
		t.Errorf("Bits(Var0) = %v, want 7 (half the universe)", got)
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	if l.QuestionCount() != 0 || l.ResolvedBits() != 0 || l.Efficiency() != 0 {
		t.Error("nil ledger accessors must all return 0")
	}
}

func TestLedgerMath(t *testing.T) {
	l := &Ledger{
		InitialBits:  10,
		ResidualBits: 4,
		Questions:    []Question{{GainBits: 4}, {GainBits: 2}},
	}
	if got := l.ResolvedBits(); got != 6 {
		t.Errorf("ResolvedBits = %v, want 6", got)
	}
	if got := l.Efficiency(); got != 3 {
		t.Errorf("Efficiency = %v, want 3 bits/question", got)
	}
	// Residual above initial (shouldn't happen, but floats drift) clamps.
	bad := &Ledger{InitialBits: 1, ResidualBits: 2}
	if got := bad.ResolvedBits(); got != 0 {
		t.Errorf("ResolvedBits with residual>initial = %v, want clamped 0", got)
	}
	// No questions → efficiency is 0, never a division by zero.
	if got := (&Ledger{InitialBits: 5}).Efficiency(); got != 0 {
		t.Errorf("Efficiency without questions = %v, want 0", got)
	}
}

// regionsFor builds n distinguishing regions over an n-var pool; region i is
// variable i, so unions are easy to cross-check against direct model counts.
func regionsFor(p *bdd.Pool, n int) []bdd.Node {
	regions := make([]bdd.Node, n)
	for i := 0; i < n; i++ {
		regions[i] = p.Var(i)
	}
	return regions
}

// directBits measures ∪ regions[lo:hi) straight off the pool, bypassing the
// meter's precomputed table.
func directBits(p *bdd.Pool, regions []bdd.Node, lo, hi int) float64 {
	u := bdd.False
	for _, r := range regions[lo:hi] {
		u = p.Or(u, r)
	}
	return Bits(p, u)
}

// TestMeterCoversBinarySearchIntervals walks every interval a binary search
// over the probe range can visit and checks the meter's precomputed bits
// match direct measurement. The meter must answer these after the pool is
// gone, so the table has to be complete up front.
func TestMeterCoversBinarySearchIntervals(t *testing.T) {
	const n = 7
	p := bdd.NewPool(n)
	regions := regionsFor(p, n)
	m := NewMeter(p, "route-map", "binary", regions)
	if m.led.InitialBits != directBits(p, regions, 0, n) {
		t.Fatalf("InitialBits = %v, want %v", m.led.InitialBits, directBits(p, regions, 0, n))
	}
	var walk func(lo, hi int)
	walk = func(lo, hi int) {
		if lo >= hi {
			return
		}
		if got, want := m.rangeBits(lo, hi), directBits(p, regions, lo, hi); got != want {
			t.Errorf("rangeBits(%d,%d) = %v, want %v", lo, hi, got, want)
		}
		mid := (lo + hi) / 2
		walk(lo, mid)
		walk(mid+1, hi)
	}
	walk(0, n)
	// Linear search and top-bottom residuals need every prefix and suffix.
	for g := 0; g <= n; g++ {
		if got, want := m.rangeBits(0, g), directBits(p, regions, 0, g); got != want {
			t.Errorf("prefix rangeBits(0,%d) = %v, want %v", g, got, want)
		}
		if got, want := m.rangeBits(g, n), directBits(p, regions, g, n); got != want {
			t.Errorf("suffix rangeBits(%d,%d) = %v, want %v", g, n, got, want)
		}
	}
}

func TestMeterQuestionAndFinish(t *testing.T) {
	const n = 4
	p := bdd.NewPool(n)
	regions := regionsFor(p, n)
	m := NewMeter(p, "route-map", "binary", regions)

	// One binary-search step: undecided [0,4) narrows to [0,2).
	m.Question(0, n, 0, 2, true)
	led := m.Finish(1, 1)
	if led == nil || led.Kind != "route-map" || led.Strategy != "binary" {
		t.Fatalf("ledger = %+v, want route-map/binary", led)
	}
	if len(led.Questions) != 1 {
		t.Fatalf("questions = %d, want 1", len(led.Questions))
	}
	q := led.Questions[0]
	wantBefore := directBits(p, regions, 0, n)
	wantAfter := directBits(p, regions, 0, 2)
	if q.BeforeBits != wantBefore || q.AfterBits != wantAfter {
		t.Errorf("question bits = %v→%v, want %v→%v", q.BeforeBits, q.AfterBits, wantBefore, wantAfter)
	}
	if q.GainBits != wantBefore-wantAfter || !q.PreferNew {
		t.Errorf("gain = %v preferNew=%v, want %v true", q.GainBits, q.PreferNew, wantBefore-wantAfter)
	}
	if led.ResidualBits != 0 {
		t.Errorf("empty residual range measured %v bits, want 0", led.ResidualBits)
	}
	if led.ResolvedBits() != led.InitialBits {
		t.Errorf("fully resolved run: ResolvedBits = %v, want InitialBits %v", led.ResolvedBits(), led.InitialBits)
	}
}

func TestMeterResidual(t *testing.T) {
	const n = 5
	p := bdd.NewPool(n)
	regions := regionsFor(p, n)
	m := NewMeter(p, "acl", "top-bottom", regions)
	led := m.Finish(2, n) // probes [2,5) never asked about
	if want := directBits(p, regions, 2, n); led.ResidualBits != want {
		t.Errorf("ResidualBits = %v, want %v", led.ResidualBits, want)
	}
	if led.ResidualBits >= led.InitialBits || led.ResidualBits == 0 {
		t.Errorf("partial residual %v should be strictly between 0 and initial %v",
			led.ResidualBits, led.InitialBits)
	}
}

func TestMeterNilSafety(t *testing.T) {
	var m *Meter
	m.Question(0, 4, 0, 2, true) // must not panic
	if led := m.Finish(0, 0); led != nil {
		t.Fatalf("nil meter Finish = %+v, want nil", led)
	}
}

func TestMeterNoRegions(t *testing.T) {
	p := bdd.NewPool(3)
	m := NewMeter(p, "route-map", "binary", nil)
	led := m.Finish(0, 0)
	if led == nil || led.InitialBits != 0 || led.ResidualBits != 0 {
		t.Fatalf("empty-region ledger = %+v, want zero bits", led)
	}
}

// TestLedgerJSONDeterminism: replay byte-compares marshaled ledgers, so the
// wire form must be stable across marshal calls and round trips.
func TestLedgerJSONDeterminism(t *testing.T) {
	l := &Ledger{
		Kind: "route-map", Strategy: "binary",
		InitialBits: 12.5, ResidualBits: 0.5,
		Questions: []Question{{BeforeBits: 12.5, AfterBits: 6, GainBits: 6.5, PreferNew: true}},
	}
	a, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(l)
	if !bytes.Equal(a, b) {
		t.Fatalf("marshal not deterministic: %s vs %s", a, b)
	}
	var back Ledger
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(&back)
	if !bytes.Equal(a, c) {
		t.Fatalf("round trip changed bytes: %s vs %s", a, c)
	}
}
