package ambiguity

import "sort"

// StrategyStats aggregates ledgers that ran under one insertion strategy.
// Sums (not means) are stored so partial aggregates merge exactly — the LB
// adds per-backend rollups, the analyzer adds per-segment ones.
type StrategyStats struct {
	// Updates counts ledgers aggregated.
	Updates int `json:"updates"`
	// Questions counts clarifying questions asked.
	Questions int `json:"questions"`
	// InitialBits, ResolvedBits and ResidualBits are sums over ledgers.
	InitialBits  float64 `json:"initialBits"`
	ResolvedBits float64 `json:"resolvedBits"`
	ResidualBits float64 `json:"residualBits"`
}

// Add folds one ledger into the stats.
func (s *StrategyStats) Add(l *Ledger) {
	if l == nil {
		return
	}
	s.Updates++
	s.Questions += l.QuestionCount()
	s.InitialBits += l.InitialBits
	s.ResolvedBits += l.ResolvedBits()
	s.ResidualBits += l.ResidualBits
}

// Merge folds another partial aggregate into the stats.
func (s *StrategyStats) Merge(o StrategyStats) {
	s.Updates += o.Updates
	s.Questions += o.Questions
	s.InitialBits += o.InitialBits
	s.ResolvedBits += o.ResolvedBits
	s.ResidualBits += o.ResidualBits
}

// BitsPerQuestion is the aggregate question-efficiency score: total bits
// resolved per question asked (0 when no questions were asked).
func (s *StrategyStats) BitsPerQuestion() float64 {
	if s == nil || s.Questions == 0 {
		return 0
	}
	return s.ResolvedBits / float64(s.Questions)
}

// MeanQuestions is the mean questions per update (0 when empty).
func (s *StrategyStats) MeanQuestions() float64 {
	if s == nil || s.Updates == 0 {
		return 0
	}
	return float64(s.Questions) / float64(s.Updates)
}

// Rollup aggregates ledgers across updates: totals plus per-strategy and
// per-kind breakdowns. The zero value is not ready; use NewRollup. It is
// the JSON body of GET /debug/ambiguity, the unit the LB merges per
// backend, and the analyzer's per-category row.
type Rollup struct {
	// Total aggregates every ledger seen.
	Total StrategyStats `json:"total"`
	// UpdatesWithQuestions counts ledgers that asked at least one question.
	UpdatesWithQuestions int `json:"updatesWithQuestions"`
	// Strategies breaks the totals down by insertion strategy name.
	Strategies map[string]*StrategyStats `json:"strategies,omitempty"`
	// Kinds breaks the totals down by update kind ("route-map", "acl").
	Kinds map[string]*StrategyStats `json:"kinds,omitempty"`
}

// NewRollup returns an empty rollup ready to aggregate.
func NewRollup() *Rollup {
	return &Rollup{
		Strategies: map[string]*StrategyStats{},
		Kinds:      map[string]*StrategyStats{},
	}
}

// Add folds one ledger into the rollup. Nil ledgers (updates recorded with
// the ledger off, or pre-v3 journal records) are ignored.
func (r *Rollup) Add(l *Ledger) {
	if r == nil || l == nil {
		return
	}
	r.Total.Add(l)
	if l.QuestionCount() > 0 {
		r.UpdatesWithQuestions++
	}
	if l.Strategy != "" {
		s := r.Strategies[l.Strategy]
		if s == nil {
			s = &StrategyStats{}
			if r.Strategies == nil {
				r.Strategies = map[string]*StrategyStats{}
			}
			r.Strategies[l.Strategy] = s
		}
		s.Add(l)
	}
	if l.Kind != "" {
		k := r.Kinds[l.Kind]
		if k == nil {
			k = &StrategyStats{}
			if r.Kinds == nil {
				r.Kinds = map[string]*StrategyStats{}
			}
			r.Kinds[l.Kind] = k
		}
		k.Add(l)
	}
}

// Merge folds another rollup (e.g. one backend's, one segment's) into r.
func (r *Rollup) Merge(o *Rollup) {
	if r == nil || o == nil {
		return
	}
	r.Total.Merge(o.Total)
	r.UpdatesWithQuestions += o.UpdatesWithQuestions
	for name, s := range o.Strategies {
		if s == nil {
			continue
		}
		dst := r.Strategies[name]
		if dst == nil {
			dst = &StrategyStats{}
			if r.Strategies == nil {
				r.Strategies = map[string]*StrategyStats{}
			}
			r.Strategies[name] = dst
		}
		dst.Merge(*s)
	}
	for name, s := range o.Kinds {
		if s == nil {
			continue
		}
		dst := r.Kinds[name]
		if dst == nil {
			dst = &StrategyStats{}
			if r.Kinds == nil {
				r.Kinds = map[string]*StrategyStats{}
			}
			r.Kinds[name] = dst
		}
		dst.Merge(*s)
	}
}

// StrategyNames returns the strategy keys in sorted order, for stable
// table rendering and Prometheus exposition.
func (r *Rollup) StrategyNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.Strategies))
	for name := range r.Strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// KindNames returns the kind keys in sorted order.
func (r *Rollup) KindNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.Kinds))
	for name := range r.Kinds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
