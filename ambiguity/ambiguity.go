// Package ambiguity quantifies the disambiguation loop: how large the
// candidate space of plausible insertions is before any clarifying question,
// how much each answer narrows it, and how much ambiguity remains when the
// update is accepted.
//
// The measure is model counting over the symbolic candidate space. A
// disambiguation run leaves a set of overlapping rules undecided; the union
// of their distinguishing regions (the inputs whose handling depends on the
// placement still in play) is a BDD, and log₂ of its satisfying-assignment
// count — its share of the route/packet universe — is the ambiguity in bits.
// Each answered question shrinks the undecided range, and the drop in bits
// is that question's information gain. The per-update record is a Ledger;
// Rollup aggregates ledgers per strategy and fleet-wide.
//
// The package sits above bdd and below disambig so every layer — disambig,
// clarify, journal, replay, server, lb, the offline analyzer — shares one
// ledger type without import cycles.
package ambiguity

import (
	"math"
	"math/big"

	"github.com/clarifynet/clarify/bdd"
)

// Log2 returns log₂(c) for a positive count, 0 otherwise. Counts larger
// than float64 range are handled by splitting off the bit length.
func Log2(c *big.Int) float64 {
	if c == nil || c.Sign() <= 0 {
		return 0
	}
	bl := c.BitLen()
	if bl <= 53 {
		return math.Log2(float64(c.Uint64()))
	}
	// Keep the top 53 bits of precision and add the shifted-off exponent.
	shift := uint(bl - 53)
	m := new(big.Int).Rsh(c, shift)
	return math.Log2(float64(m.Uint64())) + float64(shift)
}

// Bits measures a candidate region in bits: log₂ of its model count in p's
// universe. The empty region (and a single-model region) measures 0 bits —
// nothing left to disambiguate.
func Bits(p *bdd.Pool, f bdd.Node) float64 {
	if f == bdd.False {
		return 0
	}
	return Log2(p.SatCount(f))
}

// Question is the ledger entry for one answered clarifying question.
type Question struct {
	// BeforeBits and AfterBits measure the undecided candidate region
	// immediately before and after the answer.
	BeforeBits float64 `json:"beforeBits"`
	AfterBits  float64 `json:"afterBits"`
	// GainBits is the information the answer delivered (before − after,
	// clamped at zero).
	GainBits float64 `json:"gainBits"`
	// PreferNew is the user's answer: true for OPTION 1 (the new rule
	// applies to the shown input).
	PreferNew bool `json:"preferNew"`
}

// Ledger is one update's ambiguity accounting: the candidate-space
// cardinality before synthesis resolution, after each clarifying question,
// and at accept. It is persisted verbatim in journal records (schema v3)
// and byte-compared by replay, so every field must marshal
// deterministically.
type Ledger struct {
	// Kind is "route-map" or "acl".
	Kind string `json:"kind"`
	// Strategy is the insertion strategy that ran ("binary", "linear",
	// "top-bottom").
	Strategy string `json:"strategy"`
	// InitialBits is the ambiguity of the full undecided candidate region
	// before any question.
	InitialBits float64 `json:"initialBits"`
	// ResidualBits is the ambiguity left undecided when the insertion was
	// accepted (0 when the search fully resolved the range).
	ResidualBits float64 `json:"residualBits"`
	// Questions are the per-question entries, in the order asked.
	Questions []Question `json:"questions,omitempty"`
}

// QuestionCount is the number of clarifying questions asked. Nil-safe.
func (l *Ledger) QuestionCount() int {
	if l == nil {
		return 0
	}
	return len(l.Questions)
}

// ResolvedBits is the ambiguity the run eliminated: initial minus residual,
// clamped at zero. Nil-safe.
func (l *Ledger) ResolvedBits() float64 {
	if l == nil {
		return 0
	}
	r := l.InitialBits - l.ResidualBits
	if r < 0 {
		return 0
	}
	return r
}

// Efficiency is the strategy's question-efficiency score: bits resolved per
// question asked. A run that resolved everything without questions (no
// distinguishable overlaps, or an equivalence proof) scores 0 — there was
// no question to be efficient with. Nil-safe.
func (l *Ledger) Efficiency() float64 {
	if l == nil || len(l.Questions) == 0 {
		return 0
	}
	return l.ResolvedBits() / float64(len(l.Questions))
}

// Meter accumulates a Ledger while a gap search narrows the undecided probe
// range. regions[i] is the distinguishing candidate region of probe i; the
// undecided ambiguity of range [lo,hi) is Bits(∪ regions[lo:hi)).
//
// All pool work happens in NewMeter: the bits of every interval a search
// can reach (the binary-search tree's intervals plus all prefixes and
// suffixes) are precomputed while the caller still holds the symbolic
// space, so Question and Finish are pure lookups and the pool can be
// released back to its SpaceCache before the first oracle round trip. All
// methods are no-ops on a nil Meter, so instrumented searches need no
// ledger-enabled branches and the ledger-off path pays nothing.
type Meter struct {
	n    int
	bits map[interval]float64
	led  Ledger
}

type interval struct{ lo, hi int }

// NewMeter starts a ledger for one insertion run over the given
// distinguishing regions, measuring InitialBits over their union.
func NewMeter(pool *bdd.Pool, kind, strategy string, regions []bdd.Node) *Meter {
	m := &Meter{n: len(regions), bits: map[interval]float64{}}
	m.led.Kind = kind
	m.led.Strategy = strategy
	measure := func(lo, hi int) float64 {
		if lo >= hi {
			return 0
		}
		if b, ok := m.bits[interval{lo, hi}]; ok {
			return b
		}
		u := bdd.False
		for _, r := range regions[lo:hi] {
			u = pool.Or(u, r)
		}
		b := Bits(pool, u)
		m.bits[interval{lo, hi}] = b
		return b
	}
	// Binary-search tree intervals (both branches at every node).
	var fill func(lo, hi int)
	fill = func(lo, hi int) {
		if lo >= hi {
			return
		}
		measure(lo, hi)
		mid := (lo + hi) / 2
		fill(lo, mid)
		fill(mid+1, hi)
	}
	fill(0, len(regions))
	// Prefixes and suffixes (linear search, top-bottom residuals).
	for g := 0; g <= len(regions); g++ {
		measure(0, g)
		measure(g, len(regions))
	}
	m.led.InitialBits = measure(0, len(regions))
	return m
}

// rangeBits looks up the precomputed bits of the undecided range [lo,hi).
func (m *Meter) rangeBits(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > m.n {
		hi = m.n
	}
	if lo >= hi {
		return 0
	}
	return m.bits[interval{lo, hi}]
}

// Question records one answered question: the search's undecided range
// narrowed from [lo,hi) to [lo2,hi2).
func (m *Meter) Question(lo, hi, lo2, hi2 int, preferNew bool) {
	if m == nil {
		return
	}
	before := m.rangeBits(lo, hi)
	after := m.rangeBits(lo2, hi2)
	gain := before - after
	if gain < 0 {
		gain = 0
	}
	m.led.Questions = append(m.led.Questions, Question{
		BeforeBits: before,
		AfterBits:  after,
		GainBits:   gain,
		PreferNew:  preferNew,
	})
}

// Finish seals the ledger with the range still undecided at accept and
// returns it. Returns nil on a nil Meter.
func (m *Meter) Finish(lo, hi int) *Ledger {
	if m == nil {
		return nil
	}
	m.led.ResidualBits = m.rangeBits(lo, hi)
	return &m.led
}
