package ambiguity

import "github.com/clarifynet/clarify/obs"

// Annotate attaches the ledger to the disambiguate span as typed attrs:
// the run summary on sp itself and the per-question entries, in order, on
// its "question-wait" children (one per oracle round trip). Safe on a nil
// span or nil ledger.
func Annotate(sp *obs.Span, l *Ledger) {
	if sp == nil || l == nil {
		return
	}
	sp.SetFloat("ambiguity.before_bits", l.InitialBits)
	sp.SetFloat("ambiguity.after_bits", l.ResidualBits)
	sp.SetFloat("ambiguity.resolved_bits", l.ResolvedBits())
	sp.SetFloat("ambiguity.efficiency", l.Efficiency())
	sp.SetStr("ambiguity.strategy", l.Strategy)
	k := 0
	for _, c := range sp.Children {
		if c.Name != "question-wait" || k >= len(l.Questions) {
			continue
		}
		q := l.Questions[k]
		c.SetFloat("ambiguity.before_bits", q.BeforeBits)
		c.SetFloat("ambiguity.after_bits", q.AfterBits)
		c.SetFloat("ambiguity.gain_bits", q.GainBits)
		k++
	}
}
