module github.com/clarifynet/clarify

go 1.22
