package bgpsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
)

// randomConnectedNetwork builds a random connected topology of n policy-free
// routers, each originating one unique prefix.
func randomConnectedNetwork(t *testing.T, rng *rand.Rand, n int) *Network {
	t.Helper()
	net := NewNetwork()
	for i := 0; i < n; i++ {
		r := &Router{
			Name: fmt.Sprintf("R%d", i),
			ASN:  uint32(64500 + i),
			Originate: []netip.Prefix{
				netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
			},
		}
		if err := net.AddRouter(r); err != nil {
			t.Fatal(err)
		}
	}
	// Random spanning tree guarantees connectivity; extra edges add cycles.
	for i := 1; i < n; i++ {
		parent := rng.Intn(i)
		if err := net.Connect(fmt.Sprintf("R%d", i), fmt.Sprintf("R%d", parent), "", "", "", ""); err != nil {
			t.Fatal(err)
		}
	}
	extra := rng.Intn(n)
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if hasSession(net, a, b) {
			continue
		}
		if err := net.Connect(fmt.Sprintf("R%d", a), fmt.Sprintf("R%d", b), "", "", "", ""); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func hasSession(n *Network, a, b int) bool {
	ra := n.Router(fmt.Sprintf("R%d", a))
	for _, nb := range ra.Neighbors {
		if nb.Remote == fmt.Sprintf("R%d", b) {
			return true
		}
	}
	return false
}

// TestQuickConvergenceAndReachability: policy-free connected networks
// converge, every router reaches every originated prefix, and every RIB
// path is loop-free and consistent hop by hop.
func TestQuickConvergenceAndReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(6)
		net := randomConnectedNetwork(t, rng, n)
		st, err := net.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			t.Fatalf("trial %d: did not converge in %d rounds", trial, st.Rounds)
		}
		for i := 0; i < n; i++ {
			router := fmt.Sprintf("R%d", i)
			for j := 0; j < n; j++ {
				pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(j), 0, 0}), 16)
				e, ok := st.Best(router, pfx)
				if !ok {
					t.Fatalf("trial %d: %s cannot reach R%d's prefix", trial, router, j)
				}
				checkPathConsistency(t, net, st, router, pfx, e)
			}
		}
	}
}

// checkPathConsistency verifies loop-freedom and hop-by-hop agreement: if r
// learned the route from nb, then nb has a best route for the same prefix
// whose AS path is the learned path minus nb's own prepend.
func checkPathConsistency(t *testing.T, net *Network, st *State, router string, pfx netip.Prefix, e RIBEntry) {
	t.Helper()
	path := e.Route.FlatASPath()
	seen := map[uint32]bool{}
	for _, asn := range path {
		if seen[asn] {
			t.Fatalf("%s: AS path %v has a loop", router, path)
		}
		seen[asn] = true
	}
	if net.Router(router).ASN != 0 && seen[net.Router(router).ASN] {
		t.Fatalf("%s: own ASN in received path %v", router, path)
	}
	if e.From == "" {
		if len(path) != 0 {
			t.Fatalf("%s: originated route with non-empty path %v", router, path)
		}
		return
	}
	nb := net.Router(e.From)
	if len(path) == 0 || path[0] != nb.ASN {
		t.Fatalf("%s: path %v does not start with %s's ASN %d", router, path, e.From, nb.ASN)
	}
	nbEntry, ok := st.Best(e.From, pfx)
	if !ok {
		t.Fatalf("%s: learned %s from %s, which has no route", router, pfx, e.From)
	}
	nbPath := nbEntry.Route.FlatASPath()
	if len(nbPath) != len(path)-1 {
		t.Fatalf("%s: path %v vs neighbor %s path %v length mismatch", router, path, e.From, nbPath)
	}
	for i := range nbPath {
		if nbPath[i] != path[i+1] {
			t.Fatalf("%s: path %v inconsistent with neighbor's %v", router, path, nbPath)
		}
	}
}

// TestQuickShortestPathsWithoutPolicy: with no policies, every best route's
// AS-path length equals the topological hop distance.
func TestQuickShortestPathsWithoutPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		net := randomConnectedNetwork(t, rng, n)
		st, err := net.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		dist := hopDistances(net, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				pfx := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(j), 0, 0}), 16)
				e, ok := st.Best(fmt.Sprintf("R%d", i), pfx)
				if !ok {
					t.Fatalf("unreachable R%d from R%d", j, i)
				}
				if got := len(e.Route.FlatASPath()); got != dist[i][j] {
					t.Fatalf("trial %d: R%d→R%d path length %d, hop distance %d", trial, i, j, got, dist[i][j])
				}
			}
		}
	}
}

// hopDistances computes all-pairs BFS distances over sessions.
func hopDistances(net *Network, n int) [][]int {
	dist := make([][]int, n)
	for i := range dist {
		dist[i] = make([]int, n)
		for j := range dist[i] {
			dist[i][j] = -1
		}
		dist[i][i] = 0
		queue := []int{i}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			r := net.Router(fmt.Sprintf("R%d", cur))
			for _, nb := range r.Neighbors {
				var k int
				fmt.Sscanf(nb.Remote, "R%d", &k)
				if dist[i][k] < 0 {
					dist[i][k] = dist[i][cur] + 1
					queue = append(queue, k)
				}
			}
		}
	}
	return dist
}
