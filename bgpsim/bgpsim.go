// Package bgpsim is a miniature eBGP propagation simulator: routers with
// Cisco IOS policies (internal/ios) exchange route advertisements over
// sessions, applying export and import route-maps with the concrete
// evaluator, until the network reaches a fixed point.
//
// It is the substrate for the paper's Section 5 evaluation: after Clarify
// incrementally synthesizes each router's route-maps, the simulator checks
// that the five global policies hold on the resulting network. The model is
// deliberately small — eBGP only (every router its own AS), one address per
// router, standard best-path selection (weight, local preference, AS-path
// length, MED, stable neighbor tie-break), AS-path loop rejection — but the
// policy-application semantics are exactly internal/policy's.
package bgpsim

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/policy"
	"github.com/clarifynet/clarify/route"
)

// Neighbor is one directed session endpoint: the local router's view of a
// peering.
type Neighbor struct {
	// Remote is the neighbor router's name.
	Remote string
	// ImportMap and ExportMap name route-maps in the local router's Config;
	// empty names mean "accept/advertise everything unchanged".
	ImportMap string
	ExportMap string
}

// Router is one BGP speaker.
type Router struct {
	Name string
	ASN  uint32
	// RouterID is used as the next-hop address on exports.
	RouterID netip.Addr
	// Config holds the router's route-maps and their ancillary lists.
	Config *ios.Config
	// Originate lists locally originated prefixes.
	Originate []netip.Prefix
	// Neighbors are the router's sessions.
	Neighbors []Neighbor
}

// Network is a set of routers with sessions between them.
type Network struct {
	routers map[string]*Router
	order   []string
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{routers: map[string]*Router{}}
}

// AddRouter registers a router; its name must be unique.
func (n *Network) AddRouter(r *Router) error {
	if _, dup := n.routers[r.Name]; dup {
		return fmt.Errorf("bgpsim: duplicate router %q", r.Name)
	}
	if r.Config == nil {
		r.Config = ios.NewConfig()
	}
	if !r.RouterID.IsValid() {
		r.RouterID = netip.AddrFrom4([4]byte{10, 255, byte(len(n.order)), 1})
	}
	n.routers[r.Name] = r
	n.order = append(n.order, r.Name)
	return nil
}

// Router returns a registered router.
func (n *Network) Router(name string) *Router { return n.routers[name] }

// Connect establishes a bidirectional session. The map arguments name
// route-maps in the respective router's config ("" = none).
func (n *Network) Connect(a, b string, aImport, aExport, bImport, bExport string) error {
	ra, ok := n.routers[a]
	if !ok {
		return fmt.Errorf("bgpsim: unknown router %q", a)
	}
	rb, ok := n.routers[b]
	if !ok {
		return fmt.Errorf("bgpsim: unknown router %q", b)
	}
	ra.Neighbors = append(ra.Neighbors, Neighbor{Remote: b, ImportMap: aImport, ExportMap: aExport})
	rb.Neighbors = append(rb.Neighbors, Neighbor{Remote: a, ImportMap: bImport, ExportMap: bExport})
	return nil
}

// RIBEntry is a best route with its provenance.
type RIBEntry struct {
	Route route.Route
	// From is the neighbor the route was learned from; empty for locally
	// originated routes.
	From string
}

// State is the converged network state.
type State struct {
	// RIB maps router → prefix → best route.
	RIB map[string]map[netip.Prefix]RIBEntry
	// Rounds is the number of propagation rounds executed.
	Rounds int
	// Converged reports whether a fixed point was reached within the bound.
	Converged bool
}

// Run propagates routes to a fixed point (or maxRounds). Policy-evaluation
// errors (for example dangling route-map references) abort the run.
func (n *Network) Run(maxRounds int) (*State, error) {
	if maxRounds <= 0 {
		maxRounds = 64
	}
	evs := map[string]*policy.Evaluator{}
	for name, r := range n.routers {
		if err := r.Config.Validate(); err != nil {
			return nil, fmt.Errorf("bgpsim: router %s: %w", name, err)
		}
		evs[name] = policy.NewEvaluator(r.Config)
	}

	// adjIn[router][neighbor][prefix] = accepted route.
	adjIn := map[string]map[string]map[netip.Prefix]route.Route{}
	for _, name := range n.order {
		adjIn[name] = map[string]map[netip.Prefix]route.Route{}
		for _, nb := range n.routers[name].Neighbors {
			adjIn[name][nb.Remote] = map[netip.Prefix]route.Route{}
		}
	}

	best := func(name string) map[netip.Prefix]RIBEntry {
		r := n.routers[name]
		rib := map[netip.Prefix]RIBEntry{}
		for _, pfx := range r.Originate {
			lr := route.Route{
				Network:   pfx.Masked(),
				LocalPref: 100,
				Weight:    32768, // Cisco: locally originated wins
				NextHop:   r.RouterID,
			}
			rib[pfx.Masked()] = RIBEntry{Route: lr}
		}
		// Deterministic neighbor order.
		nbNames := make([]string, 0, len(adjIn[name]))
		for nb := range adjIn[name] {
			nbNames = append(nbNames, nb)
		}
		sort.Strings(nbNames)
		for _, nb := range nbNames {
			for pfx, cand := range adjIn[name][nb] {
				cur, ok := rib[pfx]
				if !ok || better(cand, cur.Route) {
					rib[pfx] = RIBEntry{Route: cand, From: nb}
				}
			}
		}
		return rib
	}

	state := &State{RIB: map[string]map[netip.Prefix]RIBEntry{}}
	for round := 1; round <= maxRounds; round++ {
		state.Rounds = round
		changed := false
		// Snapshot RIBs from current adj-ins.
		ribs := map[string]map[netip.Prefix]RIBEntry{}
		for _, name := range n.order {
			ribs[name] = best(name)
		}
		// Exchange: every router advertises its best routes to every
		// neighbor.
		for _, sender := range n.order {
			sr := n.routers[sender]
			for _, nb := range sr.Neighbors {
				receiver := n.routers[nb.Remote]
				recvNb := neighborOf(receiver, sender)
				fresh := map[netip.Prefix]route.Route{}
				for pfx, entry := range ribs[sender] {
					// Split-horizon: do not advertise back to the neighbor
					// the route was learned from.
					if entry.From == nb.Remote {
						continue
					}
					adv, ok, err := exportRoute(evs[sender], sr, nb, entry.Route)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					acc, ok, err := importRoute(evs[nb.Remote], receiver, recvNb, adv)
					if err != nil {
						return nil, err
					}
					if ok {
						fresh[pfx] = acc
					}
				}
				if !routesEqual(adjIn[nb.Remote][sender], fresh) {
					adjIn[nb.Remote][sender] = fresh
					changed = true
				}
			}
		}
		if !changed {
			state.Converged = true
			for _, name := range n.order {
				state.RIB[name] = best(name)
			}
			return state, nil
		}
	}
	for _, name := range n.order {
		state.RIB[name] = best(name)
	}
	return state, nil
}

func neighborOf(r *Router, remote string) Neighbor {
	for _, nb := range r.Neighbors {
		if nb.Remote == remote {
			return nb
		}
	}
	return Neighbor{Remote: remote}
}

// exportRoute applies the sender's export policy and eBGP attribute rules.
func exportRoute(ev *policy.Evaluator, sender *Router, nb Neighbor, r route.Route) (route.Route, bool, error) {
	out := r.Clone()
	if nb.ExportMap != "" {
		rm, ok := sender.Config.RouteMaps[nb.ExportMap]
		if !ok {
			return route.Route{}, false, fmt.Errorf("bgpsim: router %s export map %q undefined", sender.Name, nb.ExportMap)
		}
		v, err := ev.EvalRouteMap(rm, out)
		if err != nil {
			return route.Route{}, false, err
		}
		if !v.Permit {
			return route.Route{}, false, nil
		}
		out = v.Output
	}
	// eBGP: prepend own ASN, set next hop, strip local attributes.
	out.ASPath = append([]route.ASPathSegment{{ASNs: []uint32{sender.ASN}}}, out.ASPath...)
	out.NextHop = sender.RouterID
	out.Weight = 0
	out.LocalPref = 100
	return out, true, nil
}

// importRoute applies loop rejection and the receiver's import policy.
func importRoute(ev *policy.Evaluator, receiver *Router, nb Neighbor, r route.Route) (route.Route, bool, error) {
	for _, asn := range r.FlatASPath() {
		if asn == receiver.ASN {
			return route.Route{}, false, nil // AS-path loop
		}
	}
	in := r.Clone()
	if nb.ImportMap != "" {
		rm, ok := receiver.Config.RouteMaps[nb.ImportMap]
		if !ok {
			return route.Route{}, false, fmt.Errorf("bgpsim: router %s import map %q undefined", receiver.Name, nb.ImportMap)
		}
		v, err := ev.EvalRouteMap(rm, in)
		if err != nil {
			return route.Route{}, false, err
		}
		if !v.Permit {
			return route.Route{}, false, nil
		}
		in = v.Output
	}
	return in, true, nil
}

// better reports whether a beats b under BGP best-path selection.
func better(a, b route.Route) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	if a.LocalPref != b.LocalPref {
		return a.LocalPref > b.LocalPref
	}
	if la, lb := len(a.FlatASPath()), len(b.FlatASPath()); la != lb {
		return la < lb
	}
	if a.MED != b.MED {
		return a.MED < b.MED
	}
	return false // stable: earlier (sorted) neighbor wins
}

func routesEqual(a, b map[netip.Prefix]route.Route) bool {
	if len(a) != len(b) {
		return false
	}
	for pfx, ra := range a {
		rb, ok := b[pfx]
		if !ok || !ra.Equal(rb) {
			return false
		}
	}
	return true
}

// ---------- Queries ----------

// Best returns the converged best route for pfx at the router.
func (s *State) Best(router string, pfx netip.Prefix) (RIBEntry, bool) {
	rib, ok := s.RIB[router]
	if !ok {
		return RIBEntry{}, false
	}
	e, ok := rib[pfx.Masked()]
	return e, ok
}

// HasRoute reports whether the router has any route for pfx.
func (s *State) HasRoute(router string, pfx netip.Prefix) bool {
	_, ok := s.Best(router, pfx)
	return ok
}

// LearnedVia reports whether the router's best route for pfx passes through
// the given AS.
func (s *State) LearnedVia(router string, pfx netip.Prefix, asn uint32) bool {
	e, ok := s.Best(router, pfx)
	if !ok {
		return false
	}
	for _, a := range e.Route.FlatASPath() {
		if a == asn {
			return true
		}
	}
	return false
}

// Prefixes returns the router's converged prefixes, sorted.
func (s *State) Prefixes(router string) []netip.Prefix {
	rib := s.RIB[router]
	out := make([]netip.Prefix, 0, len(rib))
	for pfx := range rib {
		out = append(out, pfx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
