package bgpsim

import (
	"fmt"
	"net/netip"
	"testing"
)

// BenchmarkConvergenceChain measures fixed-point propagation across a chain
// of 16 routers originating one prefix each.
func BenchmarkConvergenceChain(b *testing.B) {
	build := func() *Network {
		n := NewNetwork()
		const k = 16
		for i := 0; i < k; i++ {
			r := &Router{
				Name: fmt.Sprintf("R%02d", i),
				ASN:  uint32(64512 + i),
				Originate: []netip.Prefix{
					netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i), 0, 0}), 16),
				},
			}
			if err := n.AddRouter(r); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < k-1; i++ {
			if err := n.Connect(fmt.Sprintf("R%02d", i), fmt.Sprintf("R%02d", i+1), "", "", "", ""); err != nil {
				b.Fatal(err)
			}
		}
		return n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := build().Run(0)
		if err != nil {
			b.Fatal(err)
		}
		if !st.Converged {
			b.Fatal("did not converge")
		}
	}
}
