package bgpsim

import (
	"net/netip"
	"testing"

	"github.com/clarifynet/clarify/ios"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func mustAdd(t *testing.T, n *Network, r *Router) {
	t.Helper()
	if err := n.AddRouter(r); err != nil {
		t.Fatal(err)
	}
}

func mustConnect(t *testing.T, n *Network, a, b string, maps ...string) {
	t.Helper()
	m := make([]string, 4)
	copy(m, maps)
	if err := n.Connect(a, b, m[0], m[1], m[2], m[3]); err != nil {
		t.Fatal(err)
	}
}

func TestLinearPropagation(t *testing.T) {
	n := NewNetwork()
	mustAdd(t, n, &Router{Name: "A", ASN: 1, Originate: []netip.Prefix{pfx("8.0.0.0/8")}})
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	mustAdd(t, n, &Router{Name: "C", ASN: 3})
	mustConnect(t, n, "A", "B")
	mustConnect(t, n, "B", "C")
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("did not converge")
	}
	e, ok := st.Best("C", pfx("8.0.0.0/8"))
	if !ok {
		t.Fatal("C has no route")
	}
	path := e.Route.FlatASPath()
	if len(path) != 2 || path[0] != 2 || path[1] != 1 {
		t.Errorf("path = %v, want [2 1]", path)
	}
	if e.From != "B" {
		t.Errorf("learned from %q", e.From)
	}
	// Local origination wins at A.
	ea, _ := st.Best("A", pfx("8.0.0.0/8"))
	if ea.From != "" || ea.Route.Weight != 32768 {
		t.Errorf("A's own route: %+v", ea)
	}
}

func TestLoopRejection(t *testing.T) {
	// Triangle: routes must not loop indefinitely; every router gets exactly
	// one best route and the run converges.
	n := NewNetwork()
	mustAdd(t, n, &Router{Name: "A", ASN: 1, Originate: []netip.Prefix{pfx("8.0.0.0/8")}})
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	mustAdd(t, n, &Router{Name: "C", ASN: 3})
	mustConnect(t, n, "A", "B")
	mustConnect(t, n, "B", "C")
	mustConnect(t, n, "C", "A")
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("triangle did not converge")
	}
	e, ok := st.Best("C", pfx("8.0.0.0/8"))
	if !ok {
		t.Fatal("C unreachable")
	}
	if got := len(e.Route.FlatASPath()); got != 1 {
		t.Errorf("C should pick the direct path, got length %d", got)
	}
}

func TestLocalPrefWinsOverPathLength(t *testing.T) {
	// D learns 8/8 via short path (B) and long path (C). Import policy sets
	// local-preference 200 on the long path → long path wins.
	n := NewNetwork()
	mustAdd(t, n, &Router{Name: "SRC", ASN: 1, Originate: []netip.Prefix{pfx("8.0.0.0/8")}})
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	mustAdd(t, n, &Router{Name: "C1", ASN: 31})
	mustAdd(t, n, &Router{Name: "C2", ASN: 32})
	d := &Router{Name: "D", ASN: 4, Config: ios.MustParse(`ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map PREFER permit 10
 match ip address prefix-list ALL
 set local-preference 200
`)}
	mustAdd(t, n, d)
	mustConnect(t, n, "SRC", "B")
	mustConnect(t, n, "SRC", "C1")
	mustConnect(t, n, "C1", "C2")
	mustConnect(t, n, "B", "D")
	// D imports from C2 with PREFER.
	if err := n.Connect("C2", "D", "", "", "PREFER", ""); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := st.Best("D", pfx("8.0.0.0/8"))
	if !ok {
		t.Fatal("D unreachable")
	}
	if e.From != "C2" {
		t.Errorf("best via %s, want C2 (local-pref 200)", e.From)
	}
	if e.Route.LocalPref != 200 {
		t.Errorf("local-pref = %d", e.Route.LocalPref)
	}
}

func TestExportDenyFilters(t *testing.T) {
	n := NewNetwork()
	src := &Router{Name: "SRC", ASN: 1,
		Originate: []netip.Prefix{pfx("8.0.0.0/8"), pfx("192.168.0.0/16")},
		Config: ios.MustParse(`ip prefix-list BOGON seq 10 permit 192.168.0.0/16 le 32
route-map NO_BOGON deny 10
 match ip address prefix-list BOGON
route-map NO_BOGON permit 20
`)}
	mustAdd(t, n, src)
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	if err := n.Connect("SRC", "B", "", "NO_BOGON", "", ""); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasRoute("B", pfx("8.0.0.0/8")) {
		t.Error("8/8 should propagate")
	}
	if st.HasRoute("B", pfx("192.168.0.0/16")) {
		t.Error("bogon leaked")
	}
}

func TestCommunityTaggingAcrossHops(t *testing.T) {
	// A tags on export; C filters on the tag two hops later.
	n := NewNetwork()
	a := &Router{Name: "A", ASN: 1, Originate: []netip.Prefix{pfx("8.0.0.0/8")},
		Config: ios.MustParse(`route-map TAG permit 10
 set community 100:1
`)}
	mustAdd(t, n, a)
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	c := &Router{Name: "C", ASN: 3, Config: ios.MustParse(`ip community-list standard TAGGED permit 100:1
route-map DROP_TAGGED deny 10
 match community TAGGED
route-map DROP_TAGGED permit 20
`)}
	mustAdd(t, n, c)
	if err := n.Connect("A", "B", "", "TAG", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("B", "C", "", "", "DROP_TAGGED", ""); err != nil {
		t.Fatal(err)
	}
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasRoute("C", pfx("8.0.0.0/8")) {
		t.Error("tagged route should be dropped at C")
	}
	if !st.HasRoute("B", pfx("8.0.0.0/8")) {
		t.Error("B should carry the tagged route")
	}
}

func TestSplitHorizon(t *testing.T) {
	n := NewNetwork()
	mustAdd(t, n, &Router{Name: "A", ASN: 1, Originate: []netip.Prefix{pfx("8.0.0.0/8")}})
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	mustConnect(t, n, "A", "B")
	st, err := n.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// B must not re-advertise A's route back; A's RIB keeps the originated
	// entry only.
	e, _ := st.Best("A", pfx("8.0.0.0/8"))
	if e.From != "" {
		t.Errorf("A's route came from %q", e.From)
	}
}

func TestDanglingMapErrors(t *testing.T) {
	n := NewNetwork()
	mustAdd(t, n, &Router{Name: "A", ASN: 1, Originate: []netip.Prefix{pfx("8.0.0.0/8")}})
	mustAdd(t, n, &Router{Name: "B", ASN: 2})
	if err := n.Connect("A", "B", "", "GHOST", "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err == nil {
		t.Fatal("dangling export map should error")
	}
}

func TestDuplicateRouterRejected(t *testing.T) {
	n := NewNetwork()
	mustAdd(t, n, &Router{Name: "A", ASN: 1})
	if err := n.AddRouter(&Router{Name: "A", ASN: 2}); err == nil {
		t.Fatal("duplicate router accepted")
	}
	if err := n.Connect("A", "NOPE", "", "", "", ""); err == nil {
		t.Fatal("unknown router accepted")
	}
}
