package evaltopo

import (
	"context"
	"testing"

	"github.com/clarifynet/clarify/llm"
)

func runEval(t *testing.T) ([]RouterStats, []PolicyCheck) {
	t.Helper()
	stats, checks, _, err := RunEvaluation(context.Background(), func() llm.Client { return llm.NewSimLLM() })
	if err != nil {
		t.Fatal(err)
	}
	return stats, checks
}

func TestFigure4Statistics(t *testing.T) {
	stats, _ := runEval(t)
	rows := map[string]RouterStats{}
	for _, s := range stats {
		rows[s.Router] = s
	}
	// Route-map counts match the paper exactly: M 4, R1 5, R2 5.
	if rows["M"].RouteMaps != 4 {
		t.Errorf("M route-maps = %d, want 4", rows["M"].RouteMaps)
	}
	if rows["R1"].RouteMaps != 5 || rows["R2"].RouteMaps != 5 {
		t.Errorf("R1/R2 route-maps = %d/%d, want 5/5", rows["R1"].RouteMaps, rows["R2"].RouteMaps)
	}
	// The paper's shape: the edge routers need more LLM calls and more
	// disambiguation questions than the border router, and R1 ≡ R2.
	if rows["R1"].LLMCalls <= rows["M"].LLMCalls {
		t.Errorf("R1 calls (%d) should exceed M calls (%d)", rows["R1"].LLMCalls, rows["M"].LLMCalls)
	}
	if rows["R1"].LLMCalls != rows["R2"].LLMCalls || rows["R1"].Disambiguations != rows["R2"].Disambiguations {
		t.Errorf("R1 and R2 should be symmetric: %+v vs %+v", rows["R1"], rows["R2"])
	}
	if rows["R1"].Disambiguations <= rows["M"].Disambiguations {
		t.Errorf("R1 questions (%d) should exceed M questions (%d)",
			rows["R1"].Disambiguations, rows["M"].Disambiguations)
	}
	// Every router needed at least one disambiguation (ambiguity is real).
	for _, r := range stats {
		if r.Disambiguations == 0 {
			t.Errorf("%s had no disambiguations", r.Router)
		}
	}
}

func TestGlobalPoliciesHold(t *testing.T) {
	_, checks := runEval(t)
	if len(checks) != 5 {
		t.Fatalf("got %d policy checks, want 5", len(checks))
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("policy %q violated: %s", c.Name, c.Details)
		}
	}
}

func TestTopologyDetails(t *testing.T) {
	_, _, st, err := RunEvaluation(context.Background(), func() llm.Client { return llm.NewSimLLM() })
	if err != nil {
		t.Fatal(err)
	}
	// M's service route carries local-pref 200 via R1 (policy 3 mechanism).
	best, ok := st.Best("M", ServicePrefix)
	if !ok || best.Route.LocalPref != 200 {
		t.Errorf("M's service route: %+v", best)
	}
	// ISPs carry the public prefix (the bogon filter is not vacuous).
	if !st.HasRoute("ISP1", PublicPrefix) || !st.HasRoute("ISP2", PublicPrefix) {
		t.Error("public prefix should reach both ISPs")
	}
	// ISPs do not carry the service or management prefixes.
	for _, isp := range []string{"ISP1", "ISP2"} {
		if st.HasRoute(isp, ServicePrefix) || st.HasRoute(isp, MgmtPrefix) {
			t.Errorf("%s carries internal prefixes", isp)
		}
	}
	// DC receives internet routes (the filters are not deny-everything).
	if !st.HasRoute("DC", ISP1Prefix) {
		t.Error("DC should receive ISP1's prefix")
	}
	// MGMT must not have the DC's copy of the reused prefix via any path.
	if st.LearnedVia("MGMT", ReusedPrefix, ASDC) {
		t.Error("reused prefix leaked from DC to MGMT")
	}
}

func TestIntentsAllParse(t *testing.T) {
	// Every evaluation intent must be within the restricted-English grammar.
	for _, in := range Intents() {
		sim := llm.NewSimLLM()
		req := llm.NewPromptStore().BuildRequest(llm.TaskSynthRouteMap,
			llm.Message{Role: llm.RoleUser, Content: in.Text})
		if _, err := sim.Complete(context.Background(), req); err != nil {
			t.Errorf("intent %q does not synthesize: %v", in.Text, err)
		}
	}
}

func TestSynthesisWithFaultyLLMStillConverges(t *testing.T) {
	// A fault on the first synthesis call of each router exercises the
	// verification loop inside the evaluation; the outcome is unchanged.
	stats, checks, _, err := RunEvaluation(context.Background(), func() llm.Client {
		return llm.NewSimLLM(llm.FaultWrongValue)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if !c.Holds {
			t.Errorf("policy %q violated under faulty LLM: %s", c.Name, c.Details)
		}
	}
	for _, s := range stats {
		if s.LLMCalls == 0 {
			t.Errorf("%s made no calls", s.Router)
		}
	}
}
