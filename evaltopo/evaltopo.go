// Package evaltopo reproduces the paper's Section 5 evaluation: the Figure 3
// topology (a datacenter and a management network behind routers R1 and R2,
// a border router M, and two ISPs), the Lightyear-style decomposition of the
// five global policies into per-router local intents, the incremental
// synthesis of every route-map through the full Clarify pipeline, and the
// validation of the global policies on the converged BGP network.
//
// The five global policies (§5):
//  1. Reused prefixes within the datacenter and management are mutually
//     invisible.
//  2. The special prefix 10.1.0.0/16 (a datacenter service) is visible to M.
//  3. M prefers the path through R1 to reach 10.1.0.0/16.
//  4. No bogon prefixes are advertised (to the ISPs).
//  5. ISP1 and ISP2 are mutually unreachable via our network.
package evaltopo

import (
	"context"
	"fmt"
	"net/netip"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/bgpsim"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
)

// AS numbers and prefixes of the Figure 3 topology.
const (
	ASM    = 65000
	ASR1   = 65001
	ASR2   = 65002
	ASDC   = 65101
	ASMGMT = 65102
	ASISP1 = 100
	ASISP2 = 200
)

// Named prefixes.
var (
	ServicePrefix = netip.MustParsePrefix("10.1.0.0/16")  // DC service, visible to M
	PublicPrefix  = netip.MustParsePrefix("100.0.0.0/16") // DC public, exported to ISPs
	ReusedPrefix  = netip.MustParsePrefix("192.168.0.0/16")
	MgmtPrefix    = netip.MustParsePrefix("10.2.0.0/16")
	ISP1Prefix    = netip.MustParsePrefix("8.0.0.0/8")
	ISP2Prefix    = netip.MustParsePrefix("9.0.0.0/8")
)

// Communities used by the local policies: routes are tagged on import so
// filtering decisions compose across routers.
const (
	CommDC      = "65000:100" // learned from the datacenter
	CommMgmt    = "65000:200" // learned from management
	CommService = "65000:300" // the special service route
)

// Intent is one local-policy synthesis step: an English intent targeted at a
// route-map of a router, plus the simulated operator's placement preference
// (true = the new stanza takes precedence over every overlapping stanza).
type Intent struct {
	Router    string
	MapName   string
	Text      string
	PreferNew bool
}

// Intents returns the Lightyear-style decomposition of the five global
// policies into per-router single-stanza intents, in synthesis order.
func Intents() []Intent {
	permitAll := "Write a route-map stanza that permits routes with the prefix 0.0.0.0/0 with mask length less than or equal to 32."
	edge := func(router string) []Intent {
		return []Intent{
			// Policy 1 machinery: tag by source network, drop cross-tagged
			// routes at both import and export.
			{router, "DC_IN", "Write a route-map stanza that permits routes with the prefix 0.0.0.0/0 with mask length less than or equal to 32 and set the community " + CommDC + ".", false},
			{router, "DC_IN", "Write a route-map stanza that denies routes tagged with the community " + CommMgmt + ".", true},
			{router, "MGMT_IN", "Write a route-map stanza that permits routes with the prefix 0.0.0.0/0 with mask length less than or equal to 32 and set the community " + CommMgmt + ".", false},
			{router, "MGMT_IN", "Write a route-map stanza that denies routes tagged with the community " + CommDC + ".", true},
			{router, "DC_OUT", "Write a route-map stanza that denies routes tagged with the community " + CommMgmt + ".", true},
			{router, "DC_OUT", permitAll, false},
			{router, "MGMT_OUT", "Write a route-map stanza that denies routes tagged with the community " + CommDC + ".", true},
			{router, "MGMT_OUT", permitAll, false},
			// Policy 2 machinery: advertise everything up to M, tagging the
			// service route.
			{router, "M_OUT", "Write a route-map stanza that permits routes containing the prefix 10.1.0.0/16 and set the community " + CommService + ".", true},
			{router, "M_OUT", permitAll, false},
		}
	}
	var out []Intent
	out = append(out, edge("R1")...)
	out = append(out, edge("R2")...)
	out = append(out,
		// Policy 3: prefer the R1 path for the service prefix.
		Intent{"M", "PREFER_R1", "Write a route-map stanza that permits routes containing the prefix 10.1.0.0/16. Their local-preference should be set to 200.", true},
		Intent{"M", "PREFER_R1", permitAll, false},
		// Imports from R2 and the ISPs.
		Intent{"M", "INTERNAL_IN", permitAll, false},
		// Policies 4 and 5 on each ISP export.
		Intent{"M", "ISP1_OUT", "Write a route-map stanza that denies routes passing through AS 200.", true},
		Intent{"M", "ISP1_OUT", "Write a route-map stanza that denies routes with the prefix 10.0.0.0/8 with mask length less than or equal to 32.", true},
		Intent{"M", "ISP1_OUT", "Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16.", false},
		Intent{"M", "ISP2_OUT", "Write a route-map stanza that denies routes passing through AS 100.", true},
		Intent{"M", "ISP2_OUT", "Write a route-map stanza that denies routes with the prefix 10.0.0.0/8 with mask length less than or equal to 32.", true},
		Intent{"M", "ISP2_OUT", "Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16.", false},
	)
	return out
}

// RouterStats is one row of the paper's Figure 4 table.
type RouterStats struct {
	Router          string
	RouteMaps       int
	LLMCalls        int
	Disambiguations int
}

// Synthesize runs every intent through the full Clarify pipeline (one
// session per router) and returns the per-router configurations and Figure 4
// statistics. newClient constructs the LLM used by each router's session
// (e.g. func() llm.Client { return llm.NewSimLLM() }).
func Synthesize(ctx context.Context, newClient func() llm.Client) (map[string]*ios.Config, []RouterStats, error) {
	sessions := map[string]*clarify.Session{}
	routerOrder := []string{"R1", "R2", "M"}
	for _, r := range routerOrder {
		sessions[r] = &clarify.Session{Client: newClient(), Config: ios.NewConfig()}
	}
	for _, in := range Intents() {
		s := sessions[in.Router]
		if s == nil {
			return nil, nil, fmt.Errorf("evaltopo: intent for unknown router %q", in.Router)
		}
		if _, ok := s.Config.RouteMaps[in.MapName]; !ok {
			if err := s.NewRouteMap(in.MapName); err != nil {
				return nil, nil, err
			}
		}
		prefer := in.PreferNew
		s.RouteOracle = disambig.FuncRouteOracle(func(disambig.RouteQuestion) (bool, error) {
			return prefer, nil
		})
		if _, err := s.Submit(ctx, in.Text, in.MapName); err != nil {
			return nil, nil, fmt.Errorf("evaltopo: %s/%s %q: %w", in.Router, in.MapName, in.Text, err)
		}
	}
	configs := map[string]*ios.Config{}
	var stats []RouterStats
	for _, r := range []string{"M", "R1", "R2"} {
		s := sessions[r]
		configs[r] = s.Config
		st := s.Stats()
		stats = append(stats, RouterStats{
			Router:          r,
			RouteMaps:       len(s.Config.RouteMaps),
			LLMCalls:        st.LLMCalls,
			Disambiguations: st.Disambiguations,
		})
	}
	return configs, stats, nil
}

// BuildTopology wires the Figure 3 network around the synthesized configs
// for M, R1 and R2. The stub routers (DC, MGMT, ISP1, ISP2) have no
// policies.
func BuildTopology(configs map[string]*ios.Config) (*bgpsim.Network, error) {
	n := bgpsim.NewNetwork()
	add := func(r *bgpsim.Router) error { return n.AddRouter(r) }
	if err := add(&bgpsim.Router{Name: "DC", ASN: ASDC,
		Originate: []netip.Prefix{ServicePrefix, PublicPrefix, ReusedPrefix}}); err != nil {
		return nil, err
	}
	if err := add(&bgpsim.Router{Name: "MGMT", ASN: ASMGMT,
		Originate: []netip.Prefix{MgmtPrefix, ReusedPrefix}}); err != nil {
		return nil, err
	}
	if err := add(&bgpsim.Router{Name: "R1", ASN: ASR1, Config: configs["R1"]}); err != nil {
		return nil, err
	}
	if err := add(&bgpsim.Router{Name: "R2", ASN: ASR2, Config: configs["R2"]}); err != nil {
		return nil, err
	}
	if err := add(&bgpsim.Router{Name: "M", ASN: ASM, Config: configs["M"]}); err != nil {
		return nil, err
	}
	if err := add(&bgpsim.Router{Name: "ISP1", ASN: ASISP1, Originate: []netip.Prefix{ISP1Prefix}}); err != nil {
		return nil, err
	}
	if err := add(&bgpsim.Router{Name: "ISP2", ASN: ASISP2, Originate: []netip.Prefix{ISP2Prefix}}); err != nil {
		return nil, err
	}

	// Edge routers to the leaf networks.
	for _, r := range []string{"R1", "R2"} {
		if err := n.Connect(r, "DC", "DC_IN", "DC_OUT", "", ""); err != nil {
			return nil, err
		}
		if err := n.Connect(r, "MGMT", "MGMT_IN", "MGMT_OUT", "", ""); err != nil {
			return nil, err
		}
	}
	// Border.
	if err := n.Connect("M", "R1", "PREFER_R1", "", "", "M_OUT"); err != nil {
		return nil, err
	}
	if err := n.Connect("M", "R2", "INTERNAL_IN", "", "", "M_OUT"); err != nil {
		return nil, err
	}
	if err := n.Connect("M", "ISP1", "INTERNAL_IN", "ISP1_OUT", "", ""); err != nil {
		return nil, err
	}
	if err := n.Connect("M", "ISP2", "INTERNAL_IN", "ISP2_OUT", "", ""); err != nil {
		return nil, err
	}
	return n, nil
}

// PolicyCheck is one validated global policy.
type PolicyCheck struct {
	Name    string
	Holds   bool
	Details string
}

// CheckGlobalPolicies evaluates the five §5 policies on the converged state.
func CheckGlobalPolicies(st *bgpsim.State) []PolicyCheck {
	var out []PolicyCheck
	check := func(name string, holds bool, details string) {
		out = append(out, PolicyCheck{Name: name, Holds: holds, Details: details})
	}

	// 1. Reused prefixes mutually invisible: each side's best route for the
	// reused prefix is its own origination, never the other side's.
	dcOK := !st.LearnedVia("DC", ReusedPrefix, ASMGMT)
	mgmtOK := !st.LearnedVia("MGMT", ReusedPrefix, ASDC)
	check("reused-prefixes-mutually-invisible", dcOK && mgmtOK,
		fmt.Sprintf("DC sees MGMT's copy: %v; MGMT sees DC's copy: %v", !dcOK, !mgmtOK))

	// 2. The service prefix is visible to M.
	check("service-visible-at-M", st.HasRoute("M", ServicePrefix),
		fmt.Sprintf("M has route for %s: %v", ServicePrefix, st.HasRoute("M", ServicePrefix)))

	// 3. M prefers the path through R1.
	best, ok := st.Best("M", ServicePrefix)
	check("M-prefers-R1", ok && best.From == "R1",
		fmt.Sprintf("best route learned from %q (local-pref %d)", best.From, best.Route.LocalPref))

	// 4. No bogons advertised to the ISPs.
	bogons := []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("172.16.0.0/12"),
		netip.MustParsePrefix("192.168.0.0/16"),
	}
	leaks := ""
	for _, isp := range []string{"ISP1", "ISP2"} {
		for _, p := range st.Prefixes(isp) {
			for _, b := range bogons {
				if b.Contains(p.Addr()) && p.Bits() >= b.Bits() {
					leaks += fmt.Sprintf("%s has %s; ", isp, p)
				}
			}
		}
	}
	check("no-bogons-advertised", leaks == "", leaks)

	// 5. ISPs mutually unreachable via our network.
	isp1Reaches := st.LearnedVia("ISP1", ISP2Prefix, ASM)
	isp2Reaches := st.LearnedVia("ISP2", ISP1Prefix, ASM)
	check("ISPs-mutually-unreachable", !isp1Reaches && !isp2Reaches,
		fmt.Sprintf("ISP1→ISP2 via us: %v; ISP2→ISP1 via us: %v", isp1Reaches, isp2Reaches))

	return out
}

// RunEvaluation is the one-call Section 5 experiment: synthesize, build,
// converge, validate. It returns the Figure 4 rows and the policy checks.
func RunEvaluation(ctx context.Context, newClient func() llm.Client) ([]RouterStats, []PolicyCheck, *bgpsim.State, error) {
	configs, stats, err := Synthesize(ctx, newClient)
	if err != nil {
		return nil, nil, nil, err
	}
	net, err := BuildTopology(configs)
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := net.Run(0)
	if err != nil {
		return nil, nil, nil, err
	}
	if !st.Converged {
		return nil, nil, nil, fmt.Errorf("evaltopo: network did not converge in %d rounds", st.Rounds)
	}
	return stats, CheckGlobalPolicies(st), st, nil
}
