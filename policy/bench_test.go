package policy

import (
	"math/rand"
	"testing"

	"github.com/clarifynet/clarify/internal/testgen"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/route"
)

// BenchmarkEvalRouteMap measures concrete first-match evaluation with cached
// regex automata.
func BenchmarkEvalRouteMap(b *testing.B) {
	cfg := ios.MustParse(paperISPOut)
	ev := NewEvaluator(cfg)
	rm := cfg.RouteMaps["ISP_OUT"]
	rng := rand.New(rand.NewSource(1))
	routes := make([]route.Route, 64)
	for i := range routes {
		routes[i] = testgen.Route(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalRouteMap(rm, routes[i%len(routes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalACL measures concrete ACL evaluation.
func BenchmarkEvalACL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := testgen.ACL(rng, "A", 10)
	acl := cfg.ACLs["A"]
	pk := testgen.Packet(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EvalACL(acl, pk)
	}
}
