// Package policy implements the concrete first-match semantics of route maps
// and ACLs — the function M : Input → Rule of the paper's Section 4.
//
// The evaluator and the symbolic encoder (internal/symbolic) are two
// interpretations of the same clause semantics; a property test asserts they
// agree on random inputs.
package policy

import (
	"fmt"
	"sort"

	"github.com/clarifynet/clarify/ciscorx"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/route"
	"github.com/clarifynet/clarify/rx"
)

// ImplicitDeny is the rule index reported when no rule matches (the trailing
// implicit deny every route map and ACL carries).
const ImplicitDeny = -1

// RouteVerdict is the outcome of evaluating a route map on one route.
type RouteVerdict struct {
	// Index is the position (0-based) of the first matching stanza within
	// RouteMap.Stanzas, or ImplicitDeny.
	Index  int
	Permit bool
	// Output is the transformed route when Permit is true; otherwise it is
	// the input route unchanged.
	Output route.Route
}

// ACLVerdict is the outcome of evaluating an ACL on one packet.
type ACLVerdict struct {
	Index  int // 0-based ACE index or ImplicitDeny
	Permit bool
}

// Evaluator evaluates route maps and ACLs of one configuration, caching
// compiled regex automata.
type Evaluator struct {
	cfg     *ios.Config
	pathDFA map[string]*rx.DFA
	commDFA map[string]*rx.DFA
}

// NewEvaluator returns an evaluator bound to cfg. The configuration should be
// validated first; dangling references surface as errors during evaluation.
func NewEvaluator(cfg *ios.Config) *Evaluator {
	return &Evaluator{
		cfg:     cfg,
		pathDFA: map[string]*rx.DFA{},
		commDFA: map[string]*rx.DFA{},
	}
}

// Config returns the configuration the evaluator is bound to.
func (e *Evaluator) Config() *ios.Config { return e.cfg }

// EvalRouteMap applies first-match semantics: the verdict of the leftmost
// matching stanza, with set clauses applied when it permits.
//
// `continue` clauses follow Cisco behaviour: a matching permit stanza with
// continue accumulates its set clauses and hands evaluation to the continue
// target (the next stanza, or the first stanza with sequence ≥ N for
// `continue N`); subsequent match clauses see the transformed route. A
// matching deny always terminates (continue on deny is ignored). Falling off
// the end after at least one matched permit permits the route with the
// accumulated transformations; matching nothing is the implicit deny.
func (e *Evaluator) EvalRouteMap(rm *ios.RouteMap, r route.Route) (RouteVerdict, error) {
	cur := r
	matchedPermit := false
	lastPermit := ImplicitDeny
	for i := 0; i < len(rm.Stanzas); {
		st := rm.Stanzas[i]
		ok, err := e.StanzaMatches(st, cur)
		if err != nil {
			return RouteVerdict{}, err
		}
		if !ok {
			i++
			continue
		}
		if !st.Permit {
			return RouteVerdict{Index: i, Permit: false, Output: r}, nil
		}
		cur = ApplySets(st.Sets, cur)
		matchedPermit = true
		lastPermit = i
		if st.Continue == nil {
			return RouteVerdict{Index: i, Permit: true, Output: cur}, nil
		}
		if st.Continue.Target == 0 {
			i++
			continue
		}
		next := len(rm.Stanzas)
		for j := i + 1; j < len(rm.Stanzas); j++ {
			if rm.Stanzas[j].Seq >= st.Continue.Target {
				next = j
				break
			}
		}
		i = next
	}
	if matchedPermit {
		return RouteVerdict{Index: lastPermit, Permit: true, Output: cur}, nil
	}
	return RouteVerdict{Index: ImplicitDeny, Permit: false, Output: r}, nil
}

// StanzaMatches reports whether every match clause of st holds for r
// (conjunction; a clause-free stanza matches everything).
func (e *Evaluator) StanzaMatches(st *ios.Stanza, r route.Route) (bool, error) {
	for _, m := range st.Matches {
		ok, err := e.MatchHolds(m, r)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// MatchHolds evaluates a single match clause.
func (e *Evaluator) MatchHolds(m ios.Match, r route.Route) (bool, error) {
	switch m := m.(type) {
	case ios.MatchASPath:
		l, ok := e.cfg.ASPathLists[m.List]
		if !ok {
			return false, fmt.Errorf("policy: undefined as-path list %q", m.List)
		}
		return e.asPathPermits(l, r)
	case ios.MatchPrefixList:
		l, ok := e.cfg.PrefixLists[m.List]
		if !ok {
			return false, fmt.Errorf("policy: undefined prefix-list %q", m.List)
		}
		return PrefixListPermits(l, r), nil
	case ios.MatchNextHop:
		l, ok := e.cfg.PrefixLists[m.List]
		if !ok {
			return false, fmt.Errorf("policy: undefined next-hop prefix-list %q", m.List)
		}
		return NextHopPermits(l, r), nil
	case ios.MatchCommunity:
		l, ok := e.cfg.CommunityLists[m.List]
		if !ok {
			return false, fmt.Errorf("policy: undefined community-list %q", m.List)
		}
		return e.communityPermits(l, r)
	case ios.MatchLocalPref:
		return r.LocalPref == m.Value, nil
	case ios.MatchMetric:
		return r.MED == m.Value, nil
	case ios.MatchTag:
		return r.Tag == m.Value, nil
	default:
		return false, fmt.Errorf("policy: unsupported match clause %T", m)
	}
}

// asPathPermits applies the list's first-match entry semantics: the first
// entry whose regex matches the path decides; default deny.
func (e *Evaluator) asPathPermits(l *ios.ASPathList, r route.Route) (bool, error) {
	subject := ciscorx.PathSubject(r.FlatASPath())
	for _, entry := range l.Entries {
		d, err := e.pathAutomaton(entry.Regex)
		if err != nil {
			return false, err
		}
		if d.Matches(subject) {
			return entry.Permit, nil
		}
	}
	return false, nil
}

func (e *Evaluator) pathAutomaton(regex string) (*rx.DFA, error) {
	if d, ok := e.pathDFA[regex]; ok {
		return d, nil
	}
	d, err := ciscorx.CompilePath(regex)
	if err != nil {
		return nil, err
	}
	e.pathDFA[regex] = d
	return d, nil
}

// PrefixListPermits applies prefix-list first-match semantics over entries in
// sequence-number order; default deny.
func PrefixListPermits(l *ios.PrefixList, r route.Route) bool {
	for _, entry := range entriesBySeq(l) {
		if PrefixEntryMatches(entry, r) {
			return entry.Permit
		}
	}
	return false
}

// PrefixEntryMatches reports whether one prefix-list entry covers the route's
// network: the entry's fixed bits agree and the route's length lies in the
// entry's resolved [ge,le] range.
func PrefixEntryMatches(entry ios.PrefixListEntry, r route.Route) bool {
	lo, hi := entry.LenRange()
	bits := r.Network.Bits()
	if bits < lo || bits > hi {
		return false
	}
	return entry.Prefix.Contains(r.Network.Addr())
}

// NextHopPermits applies prefix-list first-match semantics to the route's
// next-hop address, treated as a /32 host route (Cisco `match ip next-hop`).
func NextHopPermits(l *ios.PrefixList, r route.Route) bool {
	if !r.NextHop.IsValid() {
		return false
	}
	for _, entry := range entriesBySeq(l) {
		lo, hi := entry.LenRange()
		if lo <= 32 && 32 <= hi && entry.Prefix.Contains(r.NextHop) {
			return entry.Permit
		}
	}
	return false
}

func entriesBySeq(l *ios.PrefixList) []ios.PrefixListEntry {
	out := append([]ios.PrefixListEntry(nil), l.Entries...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// communityPermits applies community-list first-match entry semantics.
// A standard entry matches when every listed community is present on the
// route; an expanded entry matches when some community on the route matches
// the regex.
func (e *Evaluator) communityPermits(l *ios.CommunityList, r route.Route) (bool, error) {
	for _, entry := range l.Entries {
		ok, err := e.communityEntryMatches(l, entry, r)
		if err != nil {
			return false, err
		}
		if ok {
			return entry.Permit, nil
		}
	}
	return false, nil
}

func (e *Evaluator) communityEntryMatches(l *ios.CommunityList, entry ios.CommunityListEntry, r route.Route) (bool, error) {
	if l.Expanded {
		d, ok := e.commDFA[entry.Values[0]]
		if !ok {
			var err error
			d, err = ciscorx.CompileCommunity(entry.Values[0])
			if err != nil {
				return false, err
			}
			e.commDFA[entry.Values[0]] = d
		}
		for _, c := range r.Communities {
			if d.Matches(ciscorx.CommunitySubject(c.String())) {
				return true, nil
			}
		}
		return false, nil
	}
	for _, lit := range entry.Values {
		c, err := route.ParseCommunity(lit)
		if err != nil {
			return false, fmt.Errorf("policy: community-list %s: %v", l.Name, err)
		}
		if !r.HasCommunity(c) {
			return false, nil
		}
	}
	return true, nil
}

// ApplySets applies route-map set clauses in order to a copy of r.
func ApplySets(sets []ios.SetClause, r route.Route) route.Route {
	out := r.Clone()
	for _, s := range sets {
		switch s := s.(type) {
		case ios.SetMetric:
			out.MED = s.Value
		case ios.SetLocalPref:
			out.LocalPref = s.Value
		case ios.SetCommunity:
			if !s.Additive {
				out.Communities = nil
			}
			for _, lit := range s.Communities {
				out = out.AddCommunity(route.MustParseCommunity(lit))
			}
		case ios.SetNextHop:
			out.NextHop = s.Addr
		case ios.SetWeight:
			out.Weight = s.Value
		case ios.SetTag:
			out.Tag = s.Value
		}
	}
	return out
}

// EvalACL applies ACL first-match semantics; default deny.
func EvalACL(acl *ios.ACL, p packet.Packet) ACLVerdict {
	for i, ace := range acl.Entries {
		if ACEMatches(ace, p) {
			return ACLVerdict{Index: i, Permit: ace.Permit}
		}
	}
	return ACLVerdict{Index: ImplicitDeny, Permit: false}
}

// ACEMatches reports whether one access-control entry covers the packet.
func ACEMatches(ace *ios.ACE, p packet.Packet) bool {
	if !ace.Protocol.Matches(p.Protocol) {
		return false
	}
	if !ace.Src.Matches(p.Src) || !ace.Dst.Matches(p.Dst) {
		return false
	}
	if !ace.SrcPort.Matches(p.SrcPort) || !ace.DstPort.Matches(p.DstPort) {
		return false
	}
	if ace.Established && !p.Established {
		return false
	}
	if ace.ICMP != nil && !ace.ICMP.Matches(p.ICMPType, p.ICMPCode) {
		return false
	}
	return true
}
