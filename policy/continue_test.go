package policy

import (
	"testing"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/route"
)

// A route map exercising Cisco continue semantics: stanza 10 tags and
// continues, stanza 20 sets the metric for D-prefixed routes, stanza 30
// denies routes that (now) carry the tag community, stanza 40 permits the
// rest.
const continueMap = `ip prefix-list TEN seq 10 permit 10.0.0.0/8 le 32
ip prefix-list TWENTY seq 10 permit 20.0.0.0/8 le 32
ip community-list standard TAGGED permit 9:9
route-map RM permit 10
 match ip address prefix-list TEN
 set community 9:9 additive
 continue
route-map RM permit 20
 match ip address prefix-list TWENTY
 set metric 200
route-map RM deny 30
 match community TAGGED
route-map RM permit 40
`

func evalContinue(t *testing.T, cidr string) RouteVerdict {
	t.Helper()
	cfg := ios.MustParse(continueMap)
	v, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], route.New(cidr))
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestContinueAccumulatesThenDenies(t *testing.T) {
	// 10/8 route: stanza 10 matches, tags 9:9, continues; stanza 20 does not
	// match; stanza 30 matches the freshly added tag → denied.
	v := evalContinue(t, "10.1.0.0/16")
	if v.Permit || v.Index != 2 {
		t.Errorf("verdict = %+v, want deny at stanza index 2", v)
	}
}

func TestContinueFallThroughPermits(t *testing.T) {
	// 20/8 route: stanza 10 no; stanza 20 matches without continue → permit
	// with metric 200.
	v := evalContinue(t, "20.5.0.0/16")
	if !v.Permit || v.Index != 1 || v.Output.MED != 200 {
		t.Errorf("verdict = %+v", v)
	}
	// Other routes: stanzas 10-30 no, stanza 40 permit-all.
	v = evalContinue(t, "50.0.0.0/8")
	if !v.Permit || v.Index != 3 {
		t.Errorf("verdict = %+v", v)
	}
}

func TestContinueTargetSkipsStanzas(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map RM permit 10
 match ip address prefix-list ALL
 set metric 1
 continue 40
route-map RM permit 20
 set metric 99
route-map RM deny 30
route-map RM permit 40
 set local-preference 777
`)
	v, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], route.New("10.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	// Stanzas 20 and 30 are skipped: metric stays 1, lp becomes 777.
	if !v.Permit || v.Output.MED != 1 || v.Output.LocalPref != 777 || v.Index != 3 {
		t.Errorf("verdict = %+v output=%+v", v, v.Output)
	}
}

func TestContinueOffTheEndPermitsAccumulated(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map RM permit 10
 match ip address prefix-list ALL
 set metric 42
 continue
route-map RM deny 20
 match ip address prefix-list BLUE
`)
	cfg.AddPrefixList("BLUE", ios.PrefixListEntry{Seq: 10, Permit: true,
		Prefix: route.New("99.0.0.0/8").Network})
	v, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], route.New("10.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Permit || v.Output.MED != 42 || v.Index != 0 {
		t.Errorf("fall-off-end verdict = %+v", v)
	}
}

func TestContinueOnDenyIgnored(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list ALL seq 10 permit 0.0.0.0/0 le 32
route-map RM deny 10
 match ip address prefix-list ALL
 continue
route-map RM permit 20
`)
	v, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], route.New("10.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Permit || v.Index != 0 {
		t.Errorf("deny with continue must terminate: %+v", v)
	}
}

func TestContinueRoundTrip(t *testing.T) {
	cfg := ios.MustParse(continueMap)
	printed := cfg.Print()
	back := ios.MustParse(printed)
	if back.Print() != printed {
		t.Error("continue not round-trip stable")
	}
	if !cfg.RouteMaps["RM"].HasContinue() {
		t.Error("HasContinue false")
	}
}

func TestContinueParseErrors(t *testing.T) {
	for _, bad := range []string{
		"continue\n",                                     // outside stanza
		"route-map RM permit 10\n continue 5\n",          // target ≤ own seq
		"route-map RM permit 10\n continue x\n",          // non-numeric
		"route-map RM permit 10\n continue\n continue\n", // duplicate
		"route-map RM permit 10\n continue 20 30\n",      // too many args
	} {
		if _, err := ios.Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
