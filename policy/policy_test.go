package policy

import (
	"net/netip"
	"testing"

	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/packet"
	"github.com/clarifynet/clarify/route"
)

const paperISPOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

func evalISPOut(t *testing.T, r route.Route) RouteVerdict {
	t.Helper()
	cfg := ios.MustParse(paperISPOut)
	v, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["ISP_OUT"], r)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPaperRouteMapSemantics(t *testing.T) {
	// Route from ASN 32 → denied by stanza 10.
	v := evalISPOut(t, route.New("50.0.0.0/16").WithASPath(100, 32))
	if v.Index != 0 || v.Permit {
		t.Errorf("ASN-32 route: verdict %+v, want deny at stanza 0", v)
	}
	// Prefix in D1 → denied by stanza 20.
	v = evalISPOut(t, route.New("10.5.0.0/16").WithASPath(7))
	if v.Index != 1 || v.Permit {
		t.Errorf("D1 route: verdict %+v, want deny at stanza 1", v)
	}
	// local-preference 300 → permitted by stanza 30.
	r := route.New("50.0.0.0/16").WithASPath(7)
	r.LocalPref = 300
	v = evalISPOut(t, r)
	if v.Index != 2 || !v.Permit {
		t.Errorf("lp-300 route: verdict %+v, want permit at stanza 2", v)
	}
	// Nothing matches → implicit deny.
	v = evalISPOut(t, route.New("50.0.0.0/16").WithASPath(7))
	if v.Index != ImplicitDeny || v.Permit {
		t.Errorf("default route: verdict %+v, want implicit deny", v)
	}
}

func TestPrefixListGeLe(t *testing.T) {
	cfg := ios.MustParse(paperISPOut)
	d1 := cfg.PrefixLists["D1"]
	cases := []struct {
		cidr string
		want bool
	}{
		{"10.0.0.0/8", true},   // len 8 in [8,24]
		{"10.1.0.0/24", true},  // len 24 in [8,24]
		{"10.1.0.0/25", false}, // len 25 > 24
		{"11.0.0.0/8", false},  // outside 10/8
		{"20.0.0.0/16", true},  // len 16 in [16,32]
		{"20.0.1.0/32", true},  // le 32
		{"20.1.0.0/16", false}, // outside 20.0/16
		{"1.0.0.0/20", false},  // ge 24 excludes len 20
		{"1.0.1.0/24", true},   // len 24 in [24,32]
		{"1.0.8.0/24", true},   // still inside 1.0.0.0/20
		{"1.0.16.0/24", false}, // outside 1.0.0.0/20
	}
	for _, c := range cases {
		r := route.New(c.cidr)
		if got := PrefixListPermits(d1, r); got != c.want {
			t.Errorf("D1 on %s = %v, want %v", c.cidr, got, c.want)
		}
	}
}

func TestPrefixListSeqOrderAndDeny(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list L seq 20 permit 10.0.0.0/8 le 32
ip prefix-list L seq 10 deny 10.1.0.0/16 le 32
`)
	l := cfg.PrefixLists["L"]
	if PrefixListPermits(l, route.New("10.1.2.0/24")) {
		t.Error("seq 10 deny must win despite later parse position")
	}
	if !PrefixListPermits(l, route.New("10.2.0.0/16")) {
		t.Error("seq 20 permit should match")
	}
}

func TestASPathListEntries(t *testing.T) {
	cfg := ios.MustParse(`ip as-path access-list A deny _666_
ip as-path access-list A permit _100_
route-map RM permit 10
 match as-path A
`)
	ev := NewEvaluator(cfg)
	rm := cfg.RouteMaps["RM"]
	v, err := ev.EvalRouteMap(rm, route.New("9.0.0.0/8").WithASPath(666, 100))
	if err != nil {
		t.Fatal(err)
	}
	if v.Permit {
		t.Error("deny entry should win first-match")
	}
	v, _ = ev.EvalRouteMap(rm, route.New("9.0.0.0/8").WithASPath(50, 100))
	if !v.Permit {
		t.Error("permit entry should match path containing 100")
	}
	v, _ = ev.EvalRouteMap(rm, route.New("9.0.0.0/8").WithASPath(50))
	if v.Index != ImplicitDeny {
		t.Error("unmatched path should fall to implicit deny")
	}
}

func TestCommunityLists(t *testing.T) {
	cfg := ios.MustParse(`ip community-list expanded E permit _300:3_
ip community-list standard S permit 100:1 100:2
route-map RM1 permit 10
 match community E
route-map RM2 permit 10
 match community S
`)
	ev := NewEvaluator(cfg)
	r := route.New("9.0.0.0/8").WithCommunities("300:3", "7:7")
	v, err := ev.EvalRouteMap(cfg.RouteMaps["RM1"], r)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Permit {
		t.Error("expanded list should match any community")
	}
	v, _ = ev.EvalRouteMap(cfg.RouteMaps["RM1"], route.New("9.0.0.0/8").WithCommunities("1300:3"))
	if v.Permit {
		t.Error("_300:3_ must respect boundaries")
	}
	// Standard list: all literals must be present.
	v, _ = ev.EvalRouteMap(cfg.RouteMaps["RM2"], route.New("9.0.0.0/8").WithCommunities("100:1"))
	if v.Permit {
		t.Error("standard entry needs every listed community")
	}
	v, _ = ev.EvalRouteMap(cfg.RouteMaps["RM2"], route.New("9.0.0.0/8").WithCommunities("100:1", "100:2", "5:5"))
	if !v.Permit {
		t.Error("standard entry should match superset")
	}
}

func TestApplySets(t *testing.T) {
	cfg := ios.MustParse(`route-map RM permit 10
 set metric 55
 set local-preference 200
 set community 9:9 additive
 set weight 10
 set tag 3
 set ip next-hop 10.0.0.9
`)
	in := route.New("100.0.0.0/16").WithCommunities("300:3")
	v, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], in)
	if err != nil {
		t.Fatal(err)
	}
	out := v.Output
	if out.MED != 55 || out.LocalPref != 200 || out.Weight != 10 || out.Tag != 3 {
		t.Errorf("sets not applied: %+v", out)
	}
	if out.NextHop.String() != "10.0.0.9" {
		t.Errorf("next-hop = %s", out.NextHop)
	}
	if !out.HasCommunity(route.MustParseCommunity("9:9")) || !out.HasCommunity(route.MustParseCommunity("300:3")) {
		t.Error("additive community lost existing set")
	}
	if in.MED != 0 {
		t.Error("input route mutated")
	}
}

func TestSetCommunityReplaces(t *testing.T) {
	sets := []ios.SetClause{ios.SetCommunity{Communities: []string{"1:1"}}}
	r := route.New("9.0.0.0/8").WithCommunities("300:3")
	out := ApplySets(sets, r)
	if out.HasCommunity(route.MustParseCommunity("300:3")) || !out.HasCommunity(route.MustParseCommunity("1:1")) {
		t.Errorf("non-additive set community should replace: %v", out.Communities)
	}
}

func TestDenyStanzaSkipsSets(t *testing.T) {
	cfg := ios.MustParse(`route-map RM deny 10
 set metric 99
`)
	in := route.New("9.0.0.0/8")
	v, _ := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], in)
	if v.Permit || v.Output.MED == 99 {
		t.Error("deny stanza must not transform the route")
	}
}

func TestDanglingReferenceError(t *testing.T) {
	cfg := ios.MustParse("route-map RM permit 10\n match as-path GHOST\n")
	if _, err := NewEvaluator(cfg).EvalRouteMap(cfg.RouteMaps["RM"], route.New("9.0.0.0/8")); err == nil {
		t.Fatal("dangling reference should error")
	}
}

func TestEvalACL(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended A
 permit tcp host 1.1.1.1 host 2.2.2.2 eq 80
 deny udp 10.0.0.0 0.0.0.255 any
 permit tcp any any established
 deny ip any any
`)
	acl := cfg.ACLs["A"]
	cases := []struct {
		p      packet.Packet
		index  int
		permit bool
	}{
		{withPorts(packet.New("1.1.1.1", "2.2.2.2", 6), 500, 80), 0, true},
		{withPorts(packet.New("1.1.1.1", "2.2.2.2", 6), 500, 81), 3, false},
		{withPorts(packet.New("10.0.0.77", "9.9.9.9", 17), 1, 1), 1, false},
		{established(packet.New("3.3.3.3", "4.4.4.4", 6)), 2, true},
		{packet.New("3.3.3.3", "4.4.4.4", 6), 3, false},
		{packet.New("8.8.8.8", "9.9.9.9", 1), 3, false},
	}
	for i, c := range cases {
		v := EvalACL(acl, c.p)
		if v.Index != c.index || v.Permit != c.permit {
			t.Errorf("case %d (%s): got %+v, want index %d permit %v", i, c.p, v, c.index, c.permit)
		}
	}
}

func TestImplicitDenyACL(t *testing.T) {
	cfg := ios.MustParse("ip access-list extended A\n permit tcp any any eq 22\n")
	v := EvalACL(cfg.ACLs["A"], packet.New("1.1.1.1", "2.2.2.2", 17))
	if v.Index != ImplicitDeny || v.Permit {
		t.Errorf("got %+v, want implicit deny", v)
	}
}

func withPorts(p packet.Packet, src, dst uint16) packet.Packet {
	p.SrcPort, p.DstPort = src, dst
	return p
}

func established(p packet.Packet) packet.Packet {
	p.Established = true
	return p
}

func TestMatchNextHop(t *testing.T) {
	cfg := ios.MustParse(`ip prefix-list NH seq 10 permit 10.0.0.0/8 le 32
route-map RM permit 10
 match ip next-hop prefix-list NH
`)
	ev := NewEvaluator(cfg)
	rm := cfg.RouteMaps["RM"]
	in := route.New("99.0.0.0/8")
	in.NextHop = netip.MustParseAddr("10.1.2.3")
	v, err := ev.EvalRouteMap(rm, in)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Permit {
		t.Error("next-hop 10.1.2.3 should match 10.0.0.0/8 le 32")
	}
	in.NextHop = netip.MustParseAddr("192.0.2.1")
	if v, _ := ev.EvalRouteMap(rm, in); v.Permit {
		t.Error("next-hop outside the list should not match")
	}
	// A list whose length range excludes /32 can never match a next-hop.
	cfg2 := ios.MustParse(`ip prefix-list NH seq 10 permit 10.0.0.0/8 le 24
route-map RM permit 10
 match ip next-hop prefix-list NH
`)
	in.NextHop = netip.MustParseAddr("10.1.2.3")
	if v, _ := NewEvaluator(cfg2).EvalRouteMap(cfg2.RouteMaps["RM"], in); v.Permit {
		t.Error("le 24 excludes /32 host routes")
	}
}

func TestACLICMPMatching(t *testing.T) {
	cfg := ios.MustParse(`ip access-list extended I
 permit icmp any any echo
 deny icmp any any unreachable 1
 permit icmp any any
 deny ip any any
`)
	acl := cfg.ACLs["I"]
	mk := func(typ, code uint8) packet.Packet {
		p := packet.New("1.1.1.1", "2.2.2.2", packet.ProtoICMP)
		p.ICMPType, p.ICMPCode = typ, code
		return p
	}
	if v := EvalACL(acl, mk(8, 0)); v.Index != 0 || !v.Permit {
		t.Errorf("echo: %+v", v)
	}
	if v := EvalACL(acl, mk(3, 1)); v.Index != 1 || v.Permit {
		t.Errorf("unreachable code 1: %+v", v)
	}
	// unreachable with a different code falls through to the catch-all
	// icmp permit.
	if v := EvalACL(acl, mk(3, 2)); v.Index != 2 || !v.Permit {
		t.Errorf("unreachable code 2: %+v", v)
	}
	// Non-icmp traffic skips all icmp entries.
	if v := EvalACL(acl, packet.New("1.1.1.1", "2.2.2.2", packet.ProtoTCP)); v.Index != 3 {
		t.Errorf("tcp: %+v", v)
	}
}
