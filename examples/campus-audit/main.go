// The campus-audit example runs the Section 3 overlap measurement over a
// generated campus corpus: it materializes the configurations, analyzes
// every ACL and route-map with the symbolic engine, prints the aggregate
// table next to the paper's numbers, and drills into the most conflicted
// ACL with concrete witness packets.
//
// Run with:
//
//	go run ./examples/campus-audit
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/clarifynet/clarify/analysis"
	"github.com/clarifynet/clarify/exper"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/symbolic"
	"github.com/clarifynet/clarify/workload"
)

func main() {
	const (
		seed  = 1
		nACLs = 400 // scaled-down campus; pass workload.CampusACLCount for full size
		nRMs  = workload.CampusRouteMapCount
	)
	corpus := workload.Campus(seed, nACLs, nRMs)
	fmt.Printf("Generated campus corpus: %d devices (paper), %d ACLs, %d route-maps\n\n",
		corpus.Devices, len(corpus.ACLConfigs), len(corpus.RouteMapConfigs))

	aclAgg := exper.AnalyzeACLCorpus(corpus.ACLConfigs)
	exper.WriteCampusACLTable(os.Stdout, aclAgg)
	fmt.Println()

	rmAgg, err := exper.AnalyzeRouteMapCorpus(corpus.RouteMapConfigs)
	if err != nil {
		log.Fatal(err)
	}
	exper.WriteCampusRMTable(os.Stdout, rmAgg)
	fmt.Println()

	// Drill into the most conflicted ACL.
	space := symbolic.NewACLSpace()
	var worst *ios.ACL
	worstConflicts := -1
	for _, cfg := range corpus.ACLConfigs {
		for _, acl := range cfg.ACLs {
			st := analysis.AnalyzeACL(space, acl)
			if st.Conflicting > worstConflicts {
				worstConflicts = st.Conflicting
				worst = acl
			}
		}
	}
	fmt.Printf("Most conflicted ACL (%s, %d conflicting pairs) — first 5 witnesses:\n",
		worst.Name, worstConflicts)
	shown := 0
	for _, o := range analysis.ACLOverlaps(space, worst) {
		if !o.Conflicting {
			continue
		}
		fmt.Printf("  entries %d×%d disagree on packet: %s\n", o.I+1, o.J+1, o.Witness)
		shown++
		if shown == 5 {
			break
		}
	}
	fmt.Println("\nAmbiguity is real: inserting a new rule into this ACL without")
	fmt.Println("asking the operator where it belongs would silently pick one of")
	fmt.Println("many inequivalent behaviours.")
}
