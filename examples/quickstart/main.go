// The quickstart example reproduces the paper's Section 2 walkthrough end to
// end: starting from the ISP_OUT route-map, it submits the paper's exact
// English intent, shows the synthesized snippet and JSON specification,
// prints the disambiguation questions with their OPTION 1 / OPTION 2
// differential examples, and emits the final configuration (Figure 2(a)).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
)

// The paper's §2.1 running configuration.
const ispOut = `ip as-path access-list D0 permit _32$
ip prefix-list D1 seq 10 permit 10.0.0.0/8 le 24
ip prefix-list D1 seq 20 permit 20.0.0.0/16 le 32
ip prefix-list D1 seq 30 permit 1.0.0.0/20 ge 24
route-map ISP_OUT deny 10
 match as-path D0
route-map ISP_OUT deny 20
 match ip address prefix-list D1
route-map ISP_OUT permit 30
 match local-preference 300
`

// The paper's §2.1 prompt, verbatim.
const prompt = `Write a route-map stanza that permits routes containing the prefix 100.0.0.0/16 with mask length less than or equal to 23 and tagged with the community 300:3. Their MED value should be set to 55.`

func main() {
	cfg, err := ios.Parse(ispOut)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Existing configuration:")
	fmt.Println(cfg.Print())

	// The user in this walkthrough wants the new stanza to take precedence
	// (OPTION 1 at every question) — the paper's Figure 2(a) outcome.
	questionNo := 0
	oracle := disambig.FuncRouteOracle(func(q disambig.RouteQuestion) (bool, error) {
		questionNo++
		fmt.Printf("--- Disambiguation question %d ---\n%s\n", questionNo, q)
		fmt.Println(">>> user selects OPTION 1")
		fmt.Println()
		return true, nil
	})

	session := &clarify.Session{
		Client:      llm.NewSimLLM(),
		Config:      cfg,
		RouteOracle: oracle,
	}
	fmt.Printf("Intent:\n  %s\n\n", prompt)
	res, err := session.Submit(context.Background(), prompt, "ISP_OUT")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LLM-synthesized snippet:")
	fmt.Println(res.SnippetText)
	fmt.Println("Extracted JSON specification (verified against the snippet):")
	fmt.Println(res.SpecJSON)
	fmt.Println()
	fmt.Printf("Snippet lists renamed on insertion: %v\n", res.RouteInsert.Renames)
	fmt.Printf("Inserted at stanza position %d with %d question(s)\n\n",
		res.RouteInsert.Position, len(res.RouteInsert.Questions))
	fmt.Println("Final configuration (the paper's Figure 2(a)):")
	fmt.Println(session.Config.Print())

	st := session.Stats()
	fmt.Printf("Pipeline cost: %d LLM calls, %d disambiguation questions\n",
		st.LLMCalls, st.Disambiguations)
}
