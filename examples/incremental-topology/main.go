// The incremental-topology example is the paper's Section 5 evaluation as a
// runnable program: it decomposes the five global policies of the Figure 3
// topology into per-router intents, synthesizes every route-map through the
// full Clarify pipeline, prints the Figure 4 statistics table, converges the
// BGP network and validates the global policies.
//
// Run with:
//
//	go run ./examples/incremental-topology
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/clarifynet/clarify/evaltopo"
	"github.com/clarifynet/clarify/llm"
)

func main() {
	fmt.Println("Local-policy intents (Lightyear-style decomposition):")
	for _, in := range evaltopo.Intents() {
		pref := "keep existing priority"
		if in.PreferNew {
			pref = "new stanza takes precedence"
		}
		fmt.Printf("  [%s/%s] %s (%s)\n", in.Router, in.MapName, in.Text, pref)
	}
	fmt.Println()

	configs, stats, err := evaltopo.Synthesize(context.Background(),
		func() llm.Client { return llm.NewSimLLM() })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 4 statistics (measured vs paper):")
	paper := map[string][3]int{"M": {4, 9, 5}, "R1": {5, 12, 6}, "R2": {5, 12, 6}}
	fmt.Println("  Router | #Route-maps | #LLM calls | #Disambiguation")
	for _, s := range stats {
		p := paper[s.Router]
		fmt.Printf("  %-6s | %d (paper %d) | %d (paper %d) | %d (paper %d)\n",
			s.Router, s.RouteMaps, p[0], s.LLMCalls, p[1], s.Disambiguations, p[2])
	}
	fmt.Println()

	fmt.Println("Synthesized configuration for M:")
	fmt.Println(configs["M"].Print())

	net, err := evaltopo.BuildTopology(configs)
	if err != nil {
		log.Fatal(err)
	}
	st, err := net.Run(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BGP converged in %d rounds\n\n", st.Rounds)

	fmt.Println("Global policy validation:")
	for _, c := range evaltopo.CheckGlobalPolicies(st) {
		status := "HOLDS"
		if !c.Holds {
			status = "VIOLATED — " + c.Details
		}
		fmt.Printf("  %-38s %s\n", c.Name, status)
	}

	fmt.Println("\nSelected RIB entries:")
	if e, ok := st.Best("M", evaltopo.ServicePrefix); ok {
		fmt.Printf("  M's route to %s: via %s, local-pref %d, path %v\n",
			evaltopo.ServicePrefix, e.From, e.Route.LocalPref, e.Route.FlatASPath())
	}
	if e, ok := st.Best("ISP1", evaltopo.PublicPrefix); ok {
		fmt.Printf("  ISP1's route to %s: path %v\n", evaltopo.PublicPrefix, e.Route.FlatASPath())
	}
}
