// The list-update example exercises the extensions beyond the paper's
// prototype (its §7 future-work list): disambiguating insertions into
// ancillary data structures — prefix lists, community lists — and reporting
// the semantic impact of deleting an existing rule.
//
// Run with:
//
//	go run ./examples/list-update
package main

import (
	"fmt"
	"log"
	"net/netip"

	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
)

const baseConfig = `ip prefix-list CUSTOMER seq 10 deny 10.1.0.0/16 le 24
ip prefix-list CUSTOMER seq 20 permit 10.0.0.0/8 le 24
ip community-list expanded REGIONS deny _300:[0-9]+_
ip community-list expanded REGIONS permit _[0-9]+:[0-9]+_
route-map IMPORT permit 10
 match ip address prefix-list CUSTOMER
route-map IMPORT deny 20
 match community REGIONS
route-map IMPORT permit 30
`

func main() {
	cfg, err := ios.Parse(baseConfig)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Configuration:")
	fmt.Println(cfg.Print())

	// 1. Insert a prefix-list entry whose placement is ambiguous: a permit
	// for 10.1.2.0/24 can land above the /16 deny (carving an exception) or
	// below it (dead letter). The operator wants the exception.
	fmt.Println("== Inserting 'permit 10.1.2.0/24 le 32' into prefix-list CUSTOMER ==")
	entry := ios.PrefixListEntry{Permit: true, Prefix: netip.MustParsePrefix("10.1.2.0/24"), Le: 32}
	res, err := disambig.InsertPrefixListEntry(cfg, "CUSTOMER", entry,
		disambig.FuncListOracle(func(q disambig.ListQuestion) (bool, error) {
			fmt.Printf("--- Question ---\n%s\n>>> operator picks OPTION 1 (carve the exception)\n\n", q)
			return true, nil
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Inserted at entry position %d (%d question(s))\n\n", res.Position, len(res.Questions))
	cfg = res.Config

	// 2. Insert a community-list entry: permit 300:3 despite the broader
	// 300:* deny.
	fmt.Println("== Inserting 'permit _300:3_' into community-list REGIONS ==")
	centry := ios.CommunityListEntry{Permit: true, Values: []string{"_300:3_"}}
	cres, err := disambig.InsertCommunityListEntry(cfg, "REGIONS", centry,
		disambig.FuncListOracle(func(q disambig.ListQuestion) (bool, error) {
			fmt.Printf("--- Question ---\n%s\n>>> operator picks OPTION 1\n\n", q)
			return true, nil
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Inserted at entry position %d\n\n", cres.Position)
	cfg = cres.Config

	// 3. Delete the community deny stanza and review the semantic impact
	// before committing.
	fmt.Println("== Deleting route-map IMPORT stanza 20 (community deny) ==")
	del, err := disambig.DeleteRouteMapStanza(cfg, "IMPORT", 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(del.Impacts) == 0 {
		fmt.Println("No behavioural change (the stanza was dead).")
	} else {
		fmt.Printf("Deletion changes behaviour on %d example route(s):\n", len(del.Impacts))
		for _, imp := range del.Impacts {
			d := imp.Example
			fmt.Printf("\n  route %s (communities %v):\n    before: %s\n    after:  %s\n",
				d.Input.Network, d.Input.Communities, action(d.VerdictA.Permit), action(d.VerdictB.Permit))
		}
	}
	fmt.Println("\nOperator reviews the impact and decides whether to commit.")
	fmt.Println("\nFinal configuration (after the two insertions):")
	fmt.Println(cfg.Print())
}

func action(permit bool) string {
	if permit {
		return "permit"
	}
	return "deny"
}
