// The acl-update example shows the ACL half of the pipeline: inserting a new
// access-control entry into an edge filter where the placement is ambiguous
// (the new permit overlaps an existing ssh deny), with the verification loop
// visibly recovering from an injected LLM fault on the first attempt.
//
// Run with:
//
//	go run ./examples/acl-update
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/clarifynet/clarify"
	"github.com/clarifynet/clarify/disambig"
	"github.com/clarifynet/clarify/ios"
	"github.com/clarifynet/clarify/llm"
)

const edgeACL = `ip access-list extended EDGE_IN
 deny tcp any any eq 22
 permit udp 10.0.0.0 0.0.0.255 any eq 53
 permit tcp any any established
 deny ip any any
`

const prompt = `Write an ACL entry that permits tcp traffic from 10.0.0.0/24 to any host on port 22.`

func main() {
	cfg, err := ios.Parse(edgeACL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Existing ACL:")
	fmt.Println(cfg.Print())

	// Inject a wrong-port fault on the first synthesis call: the verifier
	// catches it against the JSON spec and the retry produces the correct
	// entry — Figure 1's steps 3–5 in action.
	client := llm.NewSimLLM(llm.FaultWrongValue)

	oracle := disambig.FuncACLOracle(func(q disambig.ACLQuestion) (bool, error) {
		fmt.Printf("--- Disambiguation question ---\n%s\n", q)
		fmt.Println(">>> operator wants the management subnet to reach ssh: OPTION 1")
		fmt.Println()
		return true, nil
	})
	session := &clarify.Session{
		Client:    client,
		Config:    cfg,
		ACLOracle: oracle,
	}
	fmt.Printf("Intent:\n  %s\n\n", prompt)
	res, err := session.Submit(context.Background(), prompt, "EDGE_IN")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Synthesis took %d attempt(s) (first output failed verification)\n\n", res.Attempts)
	fmt.Println("Verified snippet:")
	fmt.Println(res.SnippetText)
	fmt.Println("Specification:")
	fmt.Println(res.SpecJSON)
	fmt.Println()
	fmt.Printf("Inserted at entry position %d\n\n", res.ACLInsert.Position)
	fmt.Println("Final ACL:")
	fmt.Println(session.Config.Print())
}
