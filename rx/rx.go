// Package rx implements a small regular-expression engine compiled to
// deterministic finite automata over an explicit byte alphabet.
//
// It exists to give the symbolic analyses exact language-theoretic operations
// that backtracking regexp engines cannot provide: intersection, complement,
// emptiness, language equivalence and shortest-witness extraction. These are
// required to compute atomic predicates over the community and AS-path
// regexes appearing in route maps (see internal/atoms) and to generate the
// concrete differential examples shown to users.
//
// The supported syntax is the POSIX-ish subset used by Cisco IOS as-path and
// expanded community lists: literals, '.', character classes '[...]' (with
// ranges and '^' negation), grouping '(...)', alternation '|', and the
// repetitions '*', '+', '?'. Anchors and the '_' boundary metacharacter are
// handled by the caller (internal/atoms) by translating them into ordinary
// alphabet symbols before compilation, so this package treats every pattern
// as a full match over its alphabet.
package rx

import (
	"fmt"
	"sort"
	"strings"
)

// Alphabet is the ordered set of byte symbols an automaton ranges over.
type Alphabet []byte

// Contains reports whether b is a symbol of the alphabet.
func (a Alphabet) Contains(b byte) bool {
	for _, s := range a {
		if s == b {
			return true
		}
	}
	return false
}

// clone returns a sorted copy with duplicates removed.
func (a Alphabet) clone() Alphabet {
	seen := [256]bool{}
	out := make(Alphabet, 0, len(a))
	for _, b := range a {
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ---------- AST ----------

type exprKind int

const (
	exprEmpty exprKind = iota // ε
	exprClass                 // one symbol from a set
	exprConcat
	exprAlt
	exprStar
	exprPlus
	exprOpt
)

type expr struct {
	kind  exprKind
	class [256 / 64]uint64 // symbol bitmap for exprClass
	subs  []*expr
}

func (e *expr) classHas(b byte) bool { return e.class[b/64]>>(b%64)&1 == 1 }
func (e *expr) classAdd(b byte)      { e.class[b/64] |= 1 << (b % 64) }

// ---------- Parser ----------

type parser struct {
	pat string
	pos int
}

// SyntaxError reports a malformed pattern.
type SyntaxError struct {
	Pattern string
	Pos     int
	Msg     string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rx: %s at position %d in %q", e.Msg, e.Pos, e.Pattern)
}

func (p *parser) fail(msg string) error {
	return &SyntaxError{Pattern: p.pat, Pos: p.pos, Msg: msg}
}

func (p *parser) peek() (byte, bool) {
	if p.pos >= len(p.pat) {
		return 0, false
	}
	return p.pat[p.pos], true
}

func (p *parser) parseAlt() (*expr, error) {
	first, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	alts := []*expr{first}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			break
		}
		p.pos++
		next, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return alts[0], nil
	}
	return &expr{kind: exprAlt, subs: alts}, nil
}

func (p *parser) parseConcat() (*expr, error) {
	var parts []*expr
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		atom, err := p.parseRepeat()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	switch len(parts) {
	case 0:
		return &expr{kind: exprEmpty}, nil
	case 1:
		return parts[0], nil
	}
	return &expr{kind: exprConcat, subs: parts}, nil
}

func (p *parser) parseRepeat() (*expr, error) {
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return atom, nil
		}
		switch c {
		case '*':
			p.pos++
			atom = &expr{kind: exprStar, subs: []*expr{atom}}
		case '+':
			p.pos++
			atom = &expr{kind: exprPlus, subs: []*expr{atom}}
		case '?':
			p.pos++
			atom = &expr{kind: exprOpt, subs: []*expr{atom}}
		default:
			return atom, nil
		}
	}
}

func (p *parser) parseAtom() (*expr, error) {
	c, ok := p.peek()
	if !ok {
		return nil, p.fail("unexpected end of pattern")
	}
	switch c {
	case '(':
		p.pos++
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if c, ok := p.peek(); !ok || c != ')' {
			return nil, p.fail("missing ')'")
		}
		p.pos++
		return inner, nil
	case ')':
		return nil, p.fail("unexpected ')'")
	case '[':
		return p.parseClass()
	case '*', '+', '?':
		return nil, p.fail("repetition with no operand")
	case '.':
		p.pos++
		e := &expr{kind: exprClass}
		for i := 0; i < 256; i++ {
			e.classAdd(byte(i))
		}
		return e, nil
	case '\\':
		p.pos++
		c, ok := p.peek()
		if !ok {
			return nil, p.fail("trailing backslash")
		}
		p.pos++
		e := &expr{kind: exprClass}
		e.classAdd(c)
		return e, nil
	default:
		p.pos++
		e := &expr{kind: exprClass}
		e.classAdd(c)
		return e, nil
	}
}

func (p *parser) parseClass() (*expr, error) {
	p.pos++ // consume '['
	e := &expr{kind: exprClass}
	negate := false
	if c, ok := p.peek(); ok && c == '^' {
		negate = true
		p.pos++
	}
	seenAny := false
	for {
		c, ok := p.peek()
		if !ok {
			return nil, p.fail("missing ']'")
		}
		if c == ']' && seenAny {
			p.pos++
			break
		}
		p.pos++
		if c == '\\' {
			esc, ok := p.peek()
			if !ok {
				return nil, p.fail("trailing backslash in class")
			}
			p.pos++
			c = esc
		}
		// Range?
		if n, ok := p.peek(); ok && n == '-' && p.pos+1 < len(p.pat) && p.pat[p.pos+1] != ']' {
			p.pos++ // consume '-'
			hi, _ := p.peek()
			p.pos++
			if hi < c {
				return nil, p.fail("invalid class range")
			}
			for b := int(c); b <= int(hi); b++ {
				e.classAdd(byte(b))
			}
		} else {
			e.classAdd(c)
		}
		seenAny = true
	}
	if negate {
		for i := range e.class {
			e.class[i] = ^e.class[i]
		}
	}
	return e, nil
}

// ---------- NFA (Thompson construction) ----------

type nfaState struct {
	eps  []int
	sym  [256 / 64]uint64 // symbols labelling the single out-transition
	next int              // -1 if none
}

type nfa struct {
	states []nfaState
	start  int
	accept int
}

func (n *nfa) add() int {
	n.states = append(n.states, nfaState{next: -1})
	return len(n.states) - 1
}

func buildNFA(e *expr) *nfa {
	n := &nfa{}
	start, accept := n.build(e)
	n.start, n.accept = start, accept
	return n
}

// build returns (start, accept) fragment states.
func (n *nfa) build(e *expr) (int, int) {
	switch e.kind {
	case exprEmpty:
		s := n.add()
		a := n.add()
		n.states[s].eps = append(n.states[s].eps, a)
		return s, a
	case exprClass:
		s := n.add()
		a := n.add()
		n.states[s].sym = e.class
		n.states[s].next = a
		return s, a
	case exprConcat:
		s, a := n.build(e.subs[0])
		for _, sub := range e.subs[1:] {
			s2, a2 := n.build(sub)
			n.states[a].eps = append(n.states[a].eps, s2)
			a = a2
		}
		return s, a
	case exprAlt:
		s := n.add()
		a := n.add()
		for _, sub := range e.subs {
			s2, a2 := n.build(sub)
			n.states[s].eps = append(n.states[s].eps, s2)
			n.states[a2].eps = append(n.states[a2].eps, a)
		}
		return s, a
	case exprStar:
		s := n.add()
		a := n.add()
		s2, a2 := n.build(e.subs[0])
		n.states[s].eps = append(n.states[s].eps, s2, a)
		n.states[a2].eps = append(n.states[a2].eps, s2, a)
		return s, a
	case exprPlus:
		s2, a2 := n.build(e.subs[0])
		a := n.add()
		n.states[a2].eps = append(n.states[a2].eps, s2, a)
		return s2, a
	case exprOpt:
		s := n.add()
		a := n.add()
		s2, a2 := n.build(e.subs[0])
		n.states[s].eps = append(n.states[s].eps, s2, a)
		n.states[a2].eps = append(n.states[a2].eps, a)
		return s, a
	}
	panic("rx: unknown expr kind")
}

// ---------- DFA ----------

// DFA is a total deterministic automaton over a fixed alphabet. State 0 need
// not be the dead state; totality is guaranteed by construction (a dead state
// is materialized whenever needed).
type DFA struct {
	alphabet Alphabet
	symIndex [256]int16 // byte → alphabet index, -1 if outside
	trans    [][]int32  // trans[state][symIdx]
	accept   []bool
	start    int32
}

// NumStates reports the automaton's state count.
func (d *DFA) NumStates() int { return len(d.trans) }

// AlphabetSymbols returns a copy of the automaton's alphabet.
func (d *DFA) AlphabetSymbols() Alphabet { return append(Alphabet(nil), d.alphabet...) }

// Compile parses pattern and compiles it to a minimal DFA over alpha. The
// pattern must match the entire input string (full-match semantics). Symbols
// in the pattern outside the alphabet produce transitions that can never fire
// and therefore an automaton that rejects the corresponding strings.
func Compile(pattern string, alpha Alphabet) (*DFA, error) {
	p := &parser{pat: pattern}
	e, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.pat) {
		return nil, p.fail("unexpected trailing input")
	}
	d := determinize(buildNFA(e), alpha.clone())
	return d.Minimize(), nil
}

// MustCompile is Compile that panics on error; for statically known patterns.
func MustCompile(pattern string, alpha Alphabet) *DFA {
	d, err := Compile(pattern, alpha)
	if err != nil {
		panic(err)
	}
	return d
}

func determinize(n *nfa, alpha Alphabet) *DFA {
	d := &DFA{alphabet: alpha}
	for i := range d.symIndex {
		d.symIndex[i] = -1
	}
	for i, b := range alpha {
		d.symIndex[b] = int16(i)
	}

	closure := func(set map[int]bool) {
		var stack []int
		for s := range set {
			stack = append(stack, s)
		}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range n.states[s].eps {
				if !set[t] {
					set[t] = true
					stack = append(stack, t)
				}
			}
		}
	}
	// key encodes a sorted state set as raw little-endian bytes: this runs
	// once per discovered subset and formatting integers through fmt here
	// (and in Minimize) used to dominate the daemon's whole CPU profile.
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		buf := make([]byte, 0, len(ids)*4)
		for _, id := range ids {
			buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		return string(buf)
	}

	startSet := map[int]bool{n.start: true}
	closure(startSet)
	stateIdx := map[string]int32{}
	var sets []map[int]bool
	mk := func(set map[int]bool) int32 {
		k := key(set)
		if id, ok := stateIdx[k]; ok {
			return id
		}
		id := int32(len(sets))
		stateIdx[k] = id
		sets = append(sets, set)
		d.trans = append(d.trans, make([]int32, len(alpha)))
		d.accept = append(d.accept, set[n.accept])
		return id
	}
	d.start = mk(startSet)
	for work := int32(0); int(work) < len(sets); work++ {
		cur := sets[work]
		for ai, b := range alpha {
			next := map[int]bool{}
			for s := range cur {
				st := &n.states[s]
				if st.next >= 0 && st.sym[b/64]>>(b%64)&1 == 1 {
					next[st.next] = true
				}
			}
			closure(next)
			d.trans[work][ai] = mk(next)
		}
	}
	return d
}

// Matches reports whether the automaton accepts s in full. Any byte of s
// outside the alphabet causes a rejection.
func (d *DFA) Matches(s string) bool {
	st := d.start
	for i := 0; i < len(s); i++ {
		si := d.symIndex[s[i]]
		if si < 0 {
			return false
		}
		st = d.trans[st][si]
	}
	return d.accept[st]
}

// IsEmpty reports whether the accepted language is empty.
func (d *DFA) IsEmpty() bool {
	_, ok := d.ShortestString()
	return !ok
}

// ShortestString returns a shortest accepted string via BFS; ok is false when
// the language is empty.
func (d *DFA) ShortestString() (string, bool) {
	type prev struct {
		state int32
		sym   byte
	}
	back := make(map[int32]prev)
	visited := make([]bool, len(d.trans))
	queue := []int32{d.start}
	visited[d.start] = true
	var goal int32 = -1
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if d.accept[s] {
			goal = s
			break
		}
		for ai, b := range d.alphabet {
			t := d.trans[s][ai]
			if !visited[t] {
				visited[t] = true
				back[t] = prev{state: s, sym: b}
				queue = append(queue, t)
			}
		}
	}
	if goal < 0 {
		return "", false
	}
	var rev []byte
	for s := goal; s != d.start; {
		p := back[s]
		rev = append(rev, p.sym)
		s = p.state
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return string(rev), true
}

// sameAlphabet panics unless the two automata range over identical alphabets;
// product constructions are only defined there.
func (d *DFA) sameAlphabet(o *DFA) {
	if len(d.alphabet) != len(o.alphabet) {
		panic("rx: alphabet mismatch")
	}
	for i := range d.alphabet {
		if d.alphabet[i] != o.alphabet[i] {
			panic("rx: alphabet mismatch")
		}
	}
}

func (d *DFA) product(o *DFA, acc func(a, b bool) bool) *DFA {
	d.sameAlphabet(o)
	out := &DFA{alphabet: d.alphabet, symIndex: d.symIndex}
	type pair struct{ a, b int32 }
	idx := map[pair]int32{}
	var pairs []pair
	mk := func(p pair) int32 {
		if id, ok := idx[p]; ok {
			return id
		}
		id := int32(len(pairs))
		idx[p] = id
		pairs = append(pairs, p)
		out.trans = append(out.trans, make([]int32, len(d.alphabet)))
		out.accept = append(out.accept, acc(d.accept[p.a], o.accept[p.b]))
		return id
	}
	out.start = mk(pair{d.start, o.start})
	for w := int32(0); int(w) < len(pairs); w++ {
		p := pairs[w]
		for ai := range d.alphabet {
			out.trans[w][ai] = mk(pair{d.trans[p.a][ai], o.trans[p.b][ai]})
		}
	}
	return out.Minimize()
}

// Intersect returns an automaton for L(d) ∩ L(o).
func (d *DFA) Intersect(o *DFA) *DFA { return d.product(o, func(a, b bool) bool { return a && b }) }

// Union returns an automaton for L(d) ∪ L(o).
func (d *DFA) Union(o *DFA) *DFA { return d.product(o, func(a, b bool) bool { return a || b }) }

// Minus returns an automaton for L(d) \ L(o).
func (d *DFA) Minus(o *DFA) *DFA { return d.product(o, func(a, b bool) bool { return a && !b }) }

// Complement returns an automaton for Σ* \ L(d) over d's alphabet.
func (d *DFA) Complement() *DFA {
	out := &DFA{
		alphabet: d.alphabet,
		symIndex: d.symIndex,
		trans:    d.trans, // transitions shared; accept flags flipped
		accept:   make([]bool, len(d.accept)),
		start:    d.start,
	}
	for i, a := range d.accept {
		out.accept[i] = !a
	}
	return out.Minimize()
}

// Equal reports language equality.
func (d *DFA) Equal(o *DFA) bool {
	return d.Minus(o).IsEmpty() && o.Minus(d).IsEmpty()
}

// Subset reports whether L(d) ⊆ L(o).
func (d *DFA) Subset(o *DFA) bool { return d.Minus(o).IsEmpty() }

// Minimize returns the Moore-minimized automaton (reachable states only).
func (d *DFA) Minimize() *DFA {
	nsym := len(d.alphabet)
	ns := len(d.trans)
	// Reachability.
	reach := make([]bool, ns)
	queue := []int32{d.start}
	reach[d.start] = true
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for ai := 0; ai < nsym; ai++ {
			t := d.trans[s][ai]
			if !reach[t] {
				reach[t] = true
				queue = append(queue, t)
			}
		}
	}
	// Initial partition: accept vs non-accept.
	part := make([]int32, ns)
	for i := range part {
		if d.accept[i] {
			part[i] = 1
		}
	}
	numBlocks := int32(2)
	// Each refinement round distinguishes states by (current block,
	// successor blocks). The signature is raw little-endian bytes — this
	// loop runs states × alphabet times per round, and building the key
	// through fmt made minimization the hottest path in the serving daemon.
	buf := make([]byte, 0, (nsym+1)*4)
	for {
		next := make([]int32, ns)
		index := map[string]int32{}
		var blocks int32
		for s := 0; s < ns; s++ {
			if !reach[s] {
				continue
			}
			buf = buf[:0]
			p := part[s]
			buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
			for ai := 0; ai < nsym; ai++ {
				p = part[d.trans[s][ai]]
				buf = append(buf, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
			}
			id, ok := index[string(buf)]
			if !ok {
				id = blocks
				blocks++
				index[string(buf)] = id
			}
			next[s] = id
		}
		if blocks == numBlocks {
			part = next
			break
		}
		part, numBlocks = next, blocks
	}
	out := &DFA{alphabet: d.alphabet, symIndex: d.symIndex}
	out.trans = make([][]int32, numBlocks)
	out.accept = make([]bool, numBlocks)
	filled := make([]bool, numBlocks)
	for s := 0; s < ns; s++ {
		if !reach[s] {
			continue
		}
		b := part[s]
		if filled[b] {
			continue
		}
		filled[b] = true
		row := make([]int32, nsym)
		for ai := 0; ai < nsym; ai++ {
			row[ai] = part[d.trans[s][ai]]
		}
		out.trans[b] = row
		out.accept[b] = d.accept[s]
	}
	// Some block ids may be unused if numBlocks over-counts; compact is not
	// needed because ids are assigned densely over reachable states.
	out.start = part[d.start]
	return out
}

// Universal returns the automaton accepting Σ* over alpha.
func Universal(alpha Alphabet) *DFA {
	return MustCompile(allOf(alpha)+"*", alpha)
}

// EmptyLang returns the automaton accepting nothing over alpha.
func EmptyLang(alpha Alphabet) *DFA {
	return Universal(alpha).Complement()
}

func allOf(alpha Alphabet) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for _, b := range alpha.clone() {
		switch b {
		case ']', '\\', '^', '-':
			sb.WriteByte('\\')
		}
		sb.WriteByte(b)
	}
	sb.WriteByte(']')
	return sb.String()
}
