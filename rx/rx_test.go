package rx

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

var digits = Alphabet("0123456789 :^$")

func mustCompile(t *testing.T, pat string) *DFA {
	t.Helper()
	d, err := Compile(pat, digits)
	if err != nil {
		t.Fatalf("Compile(%q): %v", pat, err)
	}
	return d
}

func TestLiteralMatch(t *testing.T) {
	d := mustCompile(t, "300:3")
	if !d.Matches("300:3") {
		t.Error("should match its own literal")
	}
	for _, s := range []string{"", "300:33", "1300:3", "300", ":3"} {
		if d.Matches(s) {
			t.Errorf("%q should not match", s)
		}
	}
}

func TestAlternation(t *testing.T) {
	d := mustCompile(t, "12|34|5")
	for _, s := range []string{"12", "34", "5"} {
		if !d.Matches(s) {
			t.Errorf("%q should match", s)
		}
	}
	for _, s := range []string{"1", "2", "345", "", "125"} {
		if d.Matches(s) {
			t.Errorf("%q should not match", s)
		}
	}
}

func TestRepetition(t *testing.T) {
	star := mustCompile(t, "1*")
	plus := mustCompile(t, "1+")
	opt := mustCompile(t, "1?")
	if !star.Matches("") || !star.Matches("1111") {
		t.Error("star failed")
	}
	if plus.Matches("") || !plus.Matches("1") || !plus.Matches("111") {
		t.Error("plus failed")
	}
	if !opt.Matches("") || !opt.Matches("1") || opt.Matches("11") {
		t.Error("opt failed")
	}
}

func TestDotAndClasses(t *testing.T) {
	d := mustCompile(t, "1.3")
	for _, s := range []string{"123", "103", "1:3", "1 3"} {
		if !d.Matches(s) {
			t.Errorf("%q should match 1.3", s)
		}
	}
	if d.Matches("13") || d.Matches("1234") {
		t.Error("dot must match exactly one symbol")
	}

	cls := mustCompile(t, "[1-3]+")
	if !cls.Matches("1231") || cls.Matches("14") || cls.Matches("") {
		t.Error("class range failed")
	}

	neg := mustCompile(t, "[^0-5]")
	if !neg.Matches("7") || neg.Matches("3") || neg.Matches("77") {
		t.Error("negated class failed")
	}
}

func TestGrouping(t *testing.T) {
	d := mustCompile(t, "(12)+")
	if !d.Matches("12") || !d.Matches("1212") || d.Matches("121") || d.Matches("") {
		t.Error("grouped repetition failed")
	}
	nested := mustCompile(t, "((1|2)(3|4))?5")
	for _, s := range []string{"5", "135", "145", "235", "245"} {
		if !nested.Matches(s) {
			t.Errorf("%q should match", s)
		}
	}
	if nested.Matches("15") || nested.Matches("35") {
		t.Error("nested group mismatched")
	}
}

func TestEscapes(t *testing.T) {
	// '$' and '^' are ordinary alphabet symbols here; escaping must work too.
	d := mustCompile(t, "\\^1\\$")
	if !d.Matches("^1$") || d.Matches("1") {
		t.Error("escape failed")
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{"(", ")", "(1", "[", "[1", "*", "+1)", "a|*", "\\", "[z-a]"}
	for _, pat := range bad {
		if _, err := Compile(pat, digits); err == nil {
			t.Errorf("Compile(%q) should fail", pat)
		}
	}
}

func TestIntersectUnionMinus(t *testing.T) {
	a := mustCompile(t, "[0-9]+")
	b := mustCompile(t, "1[0-9]*")
	inter := a.Intersect(b)
	if !inter.Matches("1") || !inter.Matches("19") || inter.Matches("91") {
		t.Error("intersection wrong")
	}
	uni := a.Union(mustCompile(t, ":"))
	if !uni.Matches(":") || !uni.Matches("42") || uni.Matches("4:") {
		t.Error("union wrong")
	}
	minus := a.Minus(b)
	if minus.Matches("12") || !minus.Matches("21") || !minus.Matches("0") {
		t.Error("difference wrong")
	}
}

func TestComplement(t *testing.T) {
	d := mustCompile(t, "1+")
	c := d.Complement()
	if c.Matches("1") || c.Matches("111") {
		t.Error("complement contains original strings")
	}
	if !c.Matches("") || !c.Matches("2") || !c.Matches("12") {
		t.Error("complement missing strings")
	}
	if !d.Complement().Complement().Equal(d) {
		t.Error("double complement not identity")
	}
}

func TestEmptinessAndShortest(t *testing.T) {
	empty := mustCompile(t, "1").Intersect(mustCompile(t, "2"))
	if !empty.IsEmpty() {
		t.Error("1 ∩ 2 should be empty")
	}
	if _, ok := empty.ShortestString(); ok {
		t.Error("empty language has no witness")
	}
	d := mustCompile(t, "00*1")
	s, ok := d.ShortestString()
	if !ok || s != "01" {
		t.Errorf("shortest = %q, want \"01\"", s)
	}
	eps := mustCompile(t, "1*")
	if s, ok := eps.ShortestString(); !ok || s != "" {
		t.Errorf("shortest of 1* = %q, want empty string", s)
	}
}

func TestEqualAndSubset(t *testing.T) {
	a := mustCompile(t, "(1|2)*")
	b := mustCompile(t, "(2|1)*")
	if !a.Equal(b) {
		t.Error("commuted alternation should be equal")
	}
	sub := mustCompile(t, "11*")
	if !sub.Subset(a) {
		t.Error("11* ⊆ (1|2)*")
	}
	if a.Subset(sub) {
		t.Error("(1|2)* ⊄ 11*")
	}
}

func TestUniversalAndEmptyLang(t *testing.T) {
	u := Universal(digits)
	if !u.Matches("") || !u.Matches("123 : ^$") {
		t.Error("universal rejects strings")
	}
	e := EmptyLang(digits)
	if e.Matches("") || e.Matches("1") {
		t.Error("empty language accepts strings")
	}
	if !u.Complement().Equal(e) {
		t.Error("¬Σ* != ∅")
	}
}

func TestMinimizeReducesStates(t *testing.T) {
	// (1|11|111)* ≡ 1* — minimization should find the 1-state-plus automaton.
	a := mustCompile(t, "(1|11|111)*")
	b := mustCompile(t, "1*")
	if !a.Equal(b) {
		t.Fatal("languages differ")
	}
	if a.NumStates() != b.NumStates() {
		t.Errorf("minimized sizes differ: %d vs %d", a.NumStates(), b.NumStates())
	}
}

// randomPattern produces a small random pattern over 0-3.
func randomPattern(rng *rand.Rand, depth int) string {
	if depth == 0 {
		return string(byte('0' + rng.Intn(4)))
	}
	switch rng.Intn(6) {
	case 0:
		return randomPattern(rng, depth-1) + randomPattern(rng, depth-1)
	case 1:
		return "(" + randomPattern(rng, depth-1) + "|" + randomPattern(rng, depth-1) + ")"
	case 2:
		return "(" + randomPattern(rng, depth-1) + ")*"
	case 3:
		return "(" + randomPattern(rng, depth-1) + ")?"
	case 4:
		return "(" + randomPattern(rng, depth-1) + ")+"
	default:
		return string(byte('0' + rng.Intn(4)))
	}
}

func randomString(rng *rand.Rand) string {
	n := rng.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(byte('0' + rng.Intn(4)))
	}
	return sb.String()
}

// TestQuickProductSemantics: membership in product automata must equal the
// boolean combination of memberships.
func TestQuickProductSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alpha := Alphabet("0123")
	check := func() bool {
		a := MustCompile(randomPattern(rng, 3), alpha)
		b := MustCompile(randomPattern(rng, 3), alpha)
		inter, uni, minus := a.Intersect(b), a.Union(b), a.Minus(b)
		comp := a.Complement()
		for i := 0; i < 20; i++ {
			s := randomString(rng)
			ma, mb := a.Matches(s), b.Matches(s)
			if inter.Matches(s) != (ma && mb) ||
				uni.Matches(s) != (ma || mb) ||
				minus.Matches(s) != (ma && !mb) ||
				comp.Matches(s) == ma {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickShortestIsMember: every ShortestString is accepted, and no
// strictly shorter string over the alphabet is.
func TestQuickShortestIsMember(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	alpha := Alphabet("01")
	check := func() bool {
		d := MustCompile(randomPattern(rng, 3), alpha)
		s, ok := d.ShortestString()
		if !ok {
			return d.IsEmpty()
		}
		if !d.Matches(s) {
			return false
		}
		// Exhaustively confirm no shorter member exists (short strings only).
		if len(s) > 0 && len(s) <= 4 {
			for l := 0; l < len(s); l++ {
				for m := 0; m < 1<<uint(l); m++ {
					var sb strings.Builder
					for i := 0; i < l; i++ {
						sb.WriteByte(byte('0' + m>>uint(i)&1))
					}
					if d.Matches(sb.String()) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimizePreservesLanguage compares the DFA against direct NFA-free
// evaluation on random strings.
func TestQuickMinimizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alpha := Alphabet("0123")
	check := func() bool {
		pat := randomPattern(rng, 4)
		a := MustCompile(pat, alpha)
		// Compile again: canonical minimal DFA should have identical size.
		b := MustCompile(pat, alpha)
		return a.Equal(b) && a.NumStates() == b.NumStates()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
