package rx

import "testing"

// FuzzCompile checks that the regex compiler never panics and that every
// accepted pattern yields an automaton whose complement round-trips
// (¬¬L = L) and whose shortest witness, if any, is a member.
func FuzzCompile(f *testing.F) {
	alpha := Alphabet("0123 :^$")
	for _, s := range []string{
		"123", "(1|2)*3", "[0-3]+", "1?2?3?", ".*", "[^1]", "\\^1\\$",
		"((0|1)(2|3))*", "_1_", "a**", "(", "[z-a]",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, pattern string) {
		if len(pattern) > 40 {
			return // keep automata small
		}
		d, err := Compile(pattern, alpha)
		if err != nil {
			return
		}
		if !d.Complement().Complement().Equal(d) {
			t.Fatalf("double complement differs for %q", pattern)
		}
		if w, ok := d.ShortestString(); ok && !d.Matches(w) {
			t.Fatalf("shortest witness %q not a member of %q", w, pattern)
		}
	})
}
