package rx

// EnumerateStrings invokes fn on accepted strings in order of nondecreasing
// length (breadth-first, alphabet order within a length), stopping when fn
// returns false or when maxLen is exceeded. It is used to find witnesses
// satisfying side conditions the automaton itself does not encode (for
// example numeric bounds on decoded fields).
func (d *DFA) EnumerateStrings(maxLen int, fn func(s string) bool) {
	type item struct {
		state int32
		s     string
	}
	frontier := []item{{state: d.start}}
	for depth := 0; depth <= maxLen; depth++ {
		var next []item
		for _, it := range frontier {
			if d.accept[it.state] {
				if !fn(it.s) {
					return
				}
			}
		}
		if depth == maxLen {
			return
		}
		// Expand, pruning states that cannot reach acceptance cheaply is
		// unnecessary at the small witness lengths used here.
		for _, it := range frontier {
			for ai, b := range d.alphabet {
				next = append(next, item{state: d.trans[it.state][ai], s: it.s + string(b)})
			}
		}
		// Deduplicate (state, length) pairs keeping the lexicographically
		// first string, to bound the frontier by the state count.
		seen := make(map[int32]bool, len(next))
		dedup := next[:0]
		for _, it := range next {
			if !seen[it.state] {
				seen[it.state] = true
				dedup = append(dedup, it)
			}
		}
		frontier = dedup
	}
}
