package rx

import "testing"

var benchAlpha = Alphabet("0123456789 :^$")

// BenchmarkCompile measures regex → minimal DFA compilation.
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Compile(`.*([ \^]300:3[ $]).*`, benchAlpha); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntersect measures the product construction central to atomic
// predicates.
func BenchmarkIntersect(b *testing.B) {
	x := MustCompile(".*( 32[ $]).*", benchAlpha)
	y := MustCompile(".*(100 ).*", benchAlpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

// BenchmarkComplement measures complement + minimization.
func BenchmarkComplement(b *testing.B) {
	x := MustCompile(".*(65000:[0-9]+).*", benchAlpha)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Complement()
	}
}

// BenchmarkMatches measures per-subject matching throughput.
func BenchmarkMatches(b *testing.B) {
	x := MustCompile(".*( 32[ $]).*", benchAlpha)
	subject := "^100 200 300 32$"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Matches(subject) {
			b.Fatal("should match")
		}
	}
}
